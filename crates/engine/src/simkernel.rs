//! The frame-compiled simulation kernel.
//!
//! Replays a precompiled [`FramePlan`] (per-slot transmitter sets fused with a
//! CSR interference adjacency, relabelled slot-major) for a whole simulation
//! window, producing exactly the integer counters of the
//! reference slot-by-slot simulator (`latsched_sensornet::run_simulation`).
//! The reference simulator walks every node in every slot; this kernel
//! exploits the structure that simulator re-derives each slot:
//!
//! * **Candidates, not nodes.** Only the current slot's candidate range is
//!   scanned for backlog — `O(n/m)` per slot instead of `O(n)` — and the plan's
//!   slot-major relabelling makes that range (and its adjacency data) one
//!   contiguous streamed block. A network-wide queued-packet counter skips
//!   entirely empty slots in `O(1)`.
//! * **Implicit queues.** Under periodic traffic every node's queue is an
//!   arithmetic progression: the head packet of node `v` was generated at
//!   `phase(v) + popped[v] · period`, so queues shrink to two counters per
//!   node and packet objects are never allocated. (Stochastic traffic uses
//!   explicit per-node queues of generation times instead.)
//! * **Bitset interference.** The per-slot transmit set, "heard ≥ 1
//!   transmitter" and "heard ≥ 2 transmitters" predicates live in `u64` bitset
//!   words. Saturating the in-range count at two is enough to decide every
//!   collision, and per-slot radio-energy tallies are word `popcount`s over the
//!   touched words only. All per-slot passes are allocation-free; buffers are
//!   cleared via touched-word lists rather than `O(n)` sweeps.
//! * **Counter-based randomness.** Stochastic draws (Bernoulli traffic,
//!   slotted-ALOHA decisions) come from a stateless
//!   [`CounterRng`](latsched_lattice::CounterRng): `draw = hash(seed, node,
//!   slot)`. Because a draw depends only on its coordinates — never on the
//!   order draws are made — this kernel reproduces the reference simulator's
//!   stochastic runs bit for bit while touching only the nodes it needs to.
//!   Draws are keyed by *original* (pre-relabelling) node ids.
//! * **Compiled traffic traces.** A [`TrafficTrace`] bakes all Bernoulli
//!   generation draws of a `(seed, p)` pair into per-slot bitmaps once.
//!   Builds are block-wise batched: each node's draws come from
//!   [`CounterRng::bernoulli_block`] (one hoisted key and one integer
//!   threshold per 64 draws), fanned across worker threads node by node, and
//!   a 64×64 bit transpose turns the node-major draw matrix slot-major.
//!   Traces are shared through the engine's content-addressed
//!   [`TraceCache`](crate::TraceCache), so sweeps, the retry axis of a grid
//!   and repeated benchmark samples never rebuild one — and the general loop
//!   *auto-compiles* an internal trace for inline Bernoulli runs above a size
//!   threshold, so stochastic runs stop walking every node in every slot
//!   (staggered periodic runs get per-residue generation bitmaps for the same
//!   reason).
//! * **Partial-conflict narrowing.** The plan carries a per-slot conflict
//!   bitmask: clean slots (no same-slot neighbour candidates, no shared
//!   receivers) take a closed-form outcome path — `decoded = degree`,
//!   `rx = Σ degree` — and only conflicted slots pay bitset passes. Fully
//!   conflict-free plans (the paper's tiling schedules) never touch a bitset.
//! * **Parallel outcome pass.** Per-transmitter delivery outcomes are
//!   data-parallel once the bitsets are built; conflicted slots with ≥ 8k
//!   transmitters chunk their outcome pass across worker threads with the
//!   engine's scoped-thread executor. (Clean slots need no outcome pass at
//!   all — their accounting is one fused add-and-settle walk.)
//!
//! Floating-point energy is deliberately *not* computed here: the kernel
//! reports integer slot counts (`tx_slots`/`rx_slots`/`idle_slots`) so callers
//! can apply any energy model exactly, with bit-identical results to a
//! counter-based reference.

use crate::error::{EngineError, Result};
use crate::frames::FramePlan;
use crate::parallel::{fill_chunks, fill_chunks_min};
use latsched_lattice::CounterRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// The traffic models the kernel can replay.
#[derive(Clone, PartialEq, Debug)]
pub enum KernelTraffic {
    /// Every node generates one packet every `period` slots, phase-aligned at
    /// slot 0.
    Periodic {
        /// Slots between consecutive packets of one node (must be positive).
        period: u64,
    },
    /// Every node generates one packet every `period` slots, staggered: node
    /// `v` (original id) generates at slots `t ≡ v (mod period)`.
    Staggered {
        /// Slots between consecutive packets of one node (must be positive).
        period: u64,
    },
    /// Every node independently generates a packet in each slot with
    /// probability `p`, drawn from the counter RNG's traffic stream of the
    /// run's seed.
    Bernoulli {
        /// Per-slot generation probability (must be in `[0, 1]`).
        p: f64,
    },
    /// A precompiled generation trace (see [`TrafficTrace`]); replays exactly
    /// like the [`KernelTraffic::Bernoulli`] model the trace was built from,
    /// amortizing the draws across the runs of a sweep.
    Trace(Arc<TrafficTrace>),
    /// No traffic is generated.
    None,
}

/// The per-slot transmit policy of backlogged candidates.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum KernelMac {
    /// Deterministic slotted access: every backlogged candidate of the current
    /// frame slot transmits.
    #[default]
    Scheduled,
    /// Slotted ALOHA: a backlogged candidate transmits with probability `p`,
    /// drawn from the counter RNG's MAC stream of the run's seed. (Use an
    /// all-candidates, period-1 plan to model classic unslotted-schedule
    /// ALOHA.)
    Aloha {
        /// Per-slot transmission probability (must be in `[0, 1]`).
        p: f64,
    },
}

/// Configuration of one kernel run.
#[derive(Clone, PartialEq, Debug)]
pub struct KernelConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// The traffic model.
    pub traffic: KernelTraffic,
    /// The MAC decision applied to backlogged candidates.
    pub mac: KernelMac,
    /// How many times an undelivered packet is retransmitted before being
    /// dropped (`0` means each packet is transmitted exactly once).
    pub max_retries: u32,
    /// Seed of the counter-based RNG streams (ignored by fully deterministic
    /// configurations).
    pub seed: u64,
}

/// The integer counters of one kernel run; field meanings match
/// `latsched_sensornet::SimMetrics`, plus the radio-state slot counts from
/// which any energy model can be applied exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KernelCounts {
    /// Packets generated across all nodes.
    pub packets_generated: u64,
    /// Packets whose broadcast reached every intended neighbour.
    pub packets_delivered: u64,
    /// Packets dropped after exhausting their retransmission budget.
    pub packets_dropped: u64,
    /// Packets still queued when the simulation ended.
    pub packets_pending: u64,
    /// Individual transmissions performed.
    pub transmissions: u64,
    /// Successful link-level receptions.
    pub receptions: u64,
    /// Link-level losses (receiver transmitting, or ≥ 2 in-range transmitters).
    pub collisions: u64,
    /// Sum of per-packet delivery latencies in slots, over delivered packets.
    pub total_latency: u64,
    /// Node-slots spent transmitting.
    pub tx_slots: u64,
    /// Node-slots spent receiving (≥ 1 in-range transmitter, not transmitting).
    pub rx_slots: u64,
    /// Node-slots spent idle.
    pub idle_slots: u64,
}

impl KernelCounts {
    /// Adds another run's counters into this one (used by sweep aggregation).
    pub fn accumulate(&mut self, other: &KernelCounts) {
        self.packets_generated += other.packets_generated;
        self.packets_delivered += other.packets_delivered;
        self.packets_dropped += other.packets_dropped;
        self.packets_pending += other.packets_pending;
        self.transmissions += other.transmissions;
        self.receptions += other.receptions;
        self.collisions += other.collisions;
        self.total_latency += other.total_latency;
        self.tx_slots += other.tx_slots;
        self.rx_slots += other.rx_slots;
        self.idle_slots += other.idle_slots;
    }
}

/// Upper bound on `words × slots` of one compiled traffic trace: 2^28 words
/// = 2 GiB of bitmap; the cap keeps accidental huge specs from crashing the
/// process.
const TRACE_WORD_LIMIT: u64 = 1 << 28;

/// Draw-matrix words below which a trace build stays on the calling thread;
/// one word is 64 hoisted-key draws, so this is ~64k draws of work.
const TRACE_PARALLEL_MIN_WORDS: usize = 1 << 10;

/// Inline-Bernoulli runs with at least this many `node × slot` draws
/// auto-compile an internal [`TrafficTrace`] instead of drawing per node per
/// slot: the block build pays one `mix64` per draw (the inline path pays two
/// plus a float compare) and the replay touches only generating nodes.
const AUTO_TRACE_MIN_DRAWS: u64 = 1 << 12;

/// Upper bound on `period × words` of the per-residue generation bitmaps the
/// general loop compiles for staggered traffic (32 MiB); longer periods fall
/// back to the per-node walk.
const STAGGER_RESIDUE_WORD_LIMIT: u64 = 1 << 22;

/// Byte budget of the deterministic loop's full-burst memo (1 MiB). The memo
/// used to hold one `Vec<u32>` slot for every slot of the frame period, so a
/// huge-period schedule (TDMA on a big window) pinned O(n) memory per run
/// even when only a few slots ever replayed; the budget bounds it regardless
/// of period.
const FULL_BURST_MEMO_BYTE_BUDGET: usize = 1 << 20;

/// Approximate bookkeeping bytes charged per memo entry (hash-map slot, key,
/// lengths) on top of the recorded outcome array.
const FULL_BURST_ENTRY_OVERHEAD: usize = 64;

/// The bounded memo of full-burst slot outcomes.
///
/// When *every* candidate of a slot transmits, the interference outcome is a
/// pure function of the slot's content, so the per-transmitter decode counts
/// and rx tally recorded on the first full burst replay later ones in
/// O(candidates) instead of O(edges). Entries are keyed by the slot's content
/// — its candidate range within the plan's relabelled id space, which
/// determines the transmit set and its adjacency — and the memo stops
/// admitting entries once a byte budget is reached: replay degrades
/// gracefully to full interference resolution, results are unchanged, and
/// huge-period schedules no longer pin O(period + n) memo memory.
struct FullBurstMemo {
    entries: std::collections::HashMap<u64, (Box<[u32]>, u64)>,
    bytes: usize,
    budget: usize,
}

impl FullBurstMemo {
    fn new(budget: usize) -> Self {
        FullBurstMemo {
            entries: std::collections::HashMap::new(),
            bytes: 0,
            budget,
        }
    }

    /// The content key of a slot: its packed candidate range in the plan's
    /// relabelled id space. Slot-major relabelling makes the range determine
    /// the candidate set (hence the full-burst outcome), ranges of distinct
    /// slots are disjoint, and node counts fit in 32 bits (enforced by the
    /// CSR size limits) — so the packing is injective and lookups are exact,
    /// no hashing involved.
    #[inline]
    fn key(plan: &FramePlan, slot: usize) -> u64 {
        let range = plan.slot_candidates(slot);
        (range.start as u64) << 32 | range.end as u64
    }

    /// The recorded outcome of a slot's full burst, if memoized.
    #[inline]
    fn get(&self, plan: &FramePlan, slot: usize) -> Option<&(Box<[u32]>, u64)> {
        self.entries.get(&Self::key(plan, slot))
    }

    /// Records a full-burst outcome unless it would exceed the byte budget
    /// (over-budget outcomes are simply recomputed on later bursts).
    fn insert(&mut self, plan: &FramePlan, slot: usize, outcomes: &[u32], rx: u64) {
        let cost = std::mem::size_of_val(outcomes) + FULL_BURST_ENTRY_OVERHEAD;
        if self.bytes + cost > self.budget {
            return;
        }
        if self
            .entries
            .insert(Self::key(plan, slot), (outcomes.into(), rx))
            .is_none()
        {
            self.bytes += cost;
        }
    }

    /// Bytes currently charged against the budget (regression-test hook).
    #[cfg(test)]
    fn bytes(&self) -> usize {
        self.bytes
    }
}

/// The closed-form outcome accounting of one clean (conflict-free) slot: every
/// transmitter delivers to all of its neighbours and same-slot receiver sets
/// are disjoint, so `rx` is the degree sum and no bitset pass runs. `settle`
/// applies one delivery (`decoded = degree`) to the caller's queue state —
/// the single shared implementation behind both kernel loops, so their
/// clean-slot accounting cannot drift. (Conflicted slots run
/// [`SlotBuffers::resolve`], whose per-transmitter outcome pass parallelizes
/// at ≥ 8k transmitters; here the whole outcome is one add per transmitter,
/// fused into the settle walk.)
#[inline]
fn settle_clean_slot(
    plan: &FramePlan,
    counts: &mut KernelCounts,
    tx_list: &[u32],
    n: usize,
    t: u64,
    mut settle: impl FnMut(&mut KernelCounts, usize, u32, u64),
) {
    let tx_count = tx_list.len() as u64;
    counts.transmissions += tx_count;
    let mut rx = 0u64;
    for &v in tx_list {
        let v = v as usize;
        let degree = plan.degree(v);
        rx += u64::from(degree);
        settle(counts, v, degree, t);
    }
    counts.tx_slots += tx_count;
    counts.rx_slots += rx;
    counts.idle_slots += n as u64 - tx_count - rx;
}

/// Transposes a 64×64 bit matrix in place: bit `j` of word `i` moves to bit
/// `i` of word `j`. The classic recursive block swap (Hacker's Delight §7-3)
/// adapted to the LSB-first column convention used by the trace bitmaps.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// All Bernoulli generation draws of one `(seed, p)` pair over a plan's node
/// set, compiled into per-slot bitmaps in the plan's relabelled id space.
///
/// Draws are keyed by original node ids (via [`FramePlan::original_ids`]), so
/// a trace replays exactly like the inline [`KernelTraffic::Bernoulli`] model
/// it was compiled from — the point is amortization: a sweep that varies retry
/// budgets or MAC parameters across runs of one `(seed, p)` pair pays the
/// `n × slots` hash draws once instead of once per run.
#[derive(Clone, PartialEq, Debug)]
pub struct TrafficTrace {
    nodes: usize,
    slots: u64,
    words: usize,
    /// Slot-major generation bitmaps: bit `v` of slot `t` lives in
    /// `bits[t * words + v / 64]`.
    bits: Vec<u64>,
    /// Per-slot generator counts (popcount of the slot's bitmap).
    counts: Vec<u32>,
}

impl TrafficTrace {
    /// Compiles the Bernoulli(`p`) generation draws of `seed`'s traffic stream
    /// over `slots` slots of the plan's node set.
    ///
    /// The build is block-wise batched: each node's draws along the slot axis
    /// come from [`CounterRng::bernoulli_block`] — one hoisted node key and
    /// one precomputed integer threshold per 64 draws — assembled as 64×64
    /// bit-transposed tiles streamed straight into the slot-major bitmap,
    /// with the slot bands fanned across worker threads above a size
    /// threshold. The result is bit-identical to per-`(node, slot)`
    /// [`CounterRng::bernoulli`] draws.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidKernelConfig`] for a probability outside
    /// `[0, 1]` or a trace exceeding the size cap.
    pub fn bernoulli(plan: &FramePlan, seed: u64, p: f64, slots: u64) -> Result<TrafficTrace> {
        if !(0.0..=1.0).contains(&p) {
            return Err(EngineError::InvalidKernelConfig(
                "bernoulli probability must be in [0, 1]".into(),
            ));
        }
        let n = plan.num_nodes();
        let words = n.div_ceil(64);
        if words as u64 * slots > TRACE_WORD_LIMIT {
            return Err(EngineError::InvalidKernelConfig(format!(
                "traffic trace of {n} nodes x {slots} slots exceeds the size cap"
            )));
        }
        if slots == 0 || n == 0 {
            return Ok(TrafficTrace {
                nodes: n,
                slots,
                words,
                bits: vec![0u64; words * slots as usize],
                counts: vec![0u32; slots as usize],
            });
        }
        let rng = CounterRng::traffic(seed);
        let orig = plan.original_ids();

        // Streamed tile build, parallel over slot blocks: one slot block is
        // 64 consecutive slots — a contiguous row band of the slot-major
        // bitmap — so the bands chunk across worker threads directly. Within
        // a band, each 64-node tile is drawn node by node with
        // `bernoulli_block` (one hoisted key + one integer threshold per 64
        // draws) and bit-transposed into place; peak memory is the output
        // bitmap plus one 512-byte tile per thread.
        let col_words = (slots as usize).div_ceil(64);
        let block_words = 64 * words;
        let mut bits = vec![0u64; words * slots as usize];
        let mut bands: Vec<&mut [u64]> = bits.chunks_mut(block_words).collect();
        let min_parallel_bands = TRACE_PARALLEL_MIN_WORDS.div_ceil(block_words).max(2);
        fill_chunks_min(&mut bands, min_parallel_bands, |offset, chunk| {
            let mut tile = [0u64; 64];
            for (j, band) in chunk.iter_mut().enumerate() {
                let slot0 = (offset + j) as u64 * 64;
                let band_slots = (slots - slot0).min(64) as usize;
                for bi in 0..words {
                    for (i, cell) in tile.iter_mut().enumerate() {
                        let v = bi * 64 + i;
                        *cell = if v < n {
                            rng.bernoulli_block(p, u64::from(orig[v]), slot0, band_slots)
                        } else {
                            0
                        };
                    }
                    transpose64(&mut tile);
                    for (k, &cell) in tile.iter().enumerate().take(band_slots) {
                        band[k * words + bi] = cell;
                    }
                }
            }
        });
        debug_assert_eq!(bands.len(), col_words);
        drop(bands);
        let counts: Vec<u32> = (0..slots as usize)
            .map(|t| {
                bits[t * words..(t + 1) * words]
                    .iter()
                    .map(|w| w.count_ones())
                    .sum()
            })
            .collect();
        Ok(TrafficTrace {
            nodes: n,
            slots,
            words,
            bits,
            counts,
        })
    }

    /// Number of nodes the trace covers.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of slots the trace covers.
    pub fn num_slots(&self) -> u64 {
        self.slots
    }

    /// Total packets generated across the whole trace.
    pub fn total_generated(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// How many nodes generate a packet at slot `t`.
    #[inline]
    fn count_at(&self, t: u64) -> u32 {
        self.counts[t as usize]
    }

    /// The bitmap words of slot `t`.
    #[inline]
    fn words_at(&self, t: u64) -> &[u64] {
        let base = t as usize * self.words;
        &self.bits[base..base + self.words]
    }
}

/// The per-node implicit-queue state of a deterministic periodic run: a queue
/// is fully described by how many packets the node has removed (the head
/// packet of `v` was generated at `phase(v) + popped[v] · period`) plus the
/// current head packet's transmission attempts.
struct Queues<'a> {
    popped: Vec<u64>,
    attempts: Vec<u32>,
    /// Network-wide queued-packet count, for the O(1) empty-slot skip.
    queued_total: u64,
    traffic_period: u64,
    max_retries: u32,
    /// Original node ids (phase source) when the traffic is staggered; `None`
    /// for phase-aligned traffic (every phase is zero).
    staggered_ids: Option<&'a [u32]>,
}

impl Queues<'_> {
    /// The generation phase of relabelled node `v`.
    #[inline]
    fn phase(&self, v: usize) -> u64 {
        match self.staggered_ids {
            Some(orig) => u64::from(orig[v]) % self.traffic_period,
            None => 0,
        }
    }

    /// Packets generated for relabelled node `v` in slots `0..=t`.
    #[inline]
    fn generated(&self, v: usize, t: u64) -> u64 {
        let phase = self.phase(v);
        if t >= phase {
            (t - phase) / self.traffic_period + 1
        } else {
            0
        }
    }

    /// Applies one transmission outcome — delivery, retry or drop — to node
    /// `v`'s queue and the run counters. The single settlement implementation
    /// of the deterministic loop, shared by its resolve, memo-replay and
    /// conflict-free paths so they cannot drift ([`ExplicitQueues::settle`] is
    /// its counterpart for the general loop's explicit queues).
    #[inline]
    fn settle(&mut self, counts: &mut KernelCounts, v: usize, decoded: u32, degree: u32, t: u64) {
        counts.receptions += u64::from(decoded);
        counts.collisions += u64::from(degree - decoded);
        self.attempts[v] += 1;
        if decoded == degree {
            counts.packets_delivered += 1;
            counts.total_latency += t - (self.phase(v) + self.popped[v] * self.traffic_period);
            self.popped[v] += 1;
            self.attempts[v] = 0;
            self.queued_total -= 1;
        } else if self.attempts[v] > self.max_retries {
            counts.packets_dropped += 1;
            self.popped[v] += 1;
            self.attempts[v] = 0;
            self.queued_total -= 1;
        }
    }
}

/// The per-node state of the general loop: explicit queues of generation
/// times (any traffic pattern), head-packet attempt counters, the
/// network-wide backlog count, and a backlog bitmask over relabelled ids so
/// the per-slot candidate scan reads a handful of words instead of one queue
/// header per candidate.
struct ExplicitQueues {
    queues: Vec<VecDeque<u64>>,
    attempts: Vec<u32>,
    /// Bit `v` set iff `queues[v]` is nonempty. Slot candidates are a
    /// contiguous relabelled-id range, so the slot's backlogged candidates are
    /// the set bits of a word range of this mask.
    backlog: Vec<u64>,
    queued_total: u64,
    max_retries: u32,
}

impl ExplicitQueues {
    fn new(n: usize, max_retries: u32) -> Self {
        ExplicitQueues {
            queues: vec![VecDeque::new(); n],
            attempts: vec![0u32; n],
            backlog: vec![0u64; n.div_ceil(64)],
            queued_total: 0,
            max_retries,
        }
    }

    /// Enqueues one packet generated at `t` for node `v`, maintaining the
    /// backlog mask and count.
    #[inline]
    fn push(&mut self, v: usize, t: u64) {
        self.queues[v].push_back(t);
        self.backlog[v / 64] |= 1u64 << (v % 64);
        self.queued_total += 1;
    }

    /// Applies one transmission outcome — delivery, retry or drop — to node
    /// `v`'s queue and the run counters. The single settlement implementation
    /// of the general loop, shared by its resolve and conflict-free paths so
    /// they cannot drift (the counterpart of [`Queues::settle`] for implicit
    /// periodic queues).
    #[inline]
    fn settle(&mut self, counts: &mut KernelCounts, v: usize, decoded: u32, degree: u32, t: u64) {
        counts.receptions += u64::from(decoded);
        counts.collisions += u64::from(degree - decoded);
        self.attempts[v] += 1;
        let popped = if decoded == degree {
            let generated_at = self.queues[v]
                .pop_front()
                .expect("transmitters are backlogged");
            counts.packets_delivered += 1;
            counts.total_latency += t - generated_at;
            true
        } else if self.attempts[v] > self.max_retries {
            self.queues[v].pop_front();
            counts.packets_dropped += 1;
            true
        } else {
            false
        };
        if popped {
            self.attempts[v] = 0;
            self.queued_total -= 1;
            if self.queues[v].is_empty() {
                self.backlog[v / 64] &= !(1u64 << (v % 64));
            }
        }
    }
}

/// The reusable per-slot bitset state of the interference passes, shared by the
/// deterministic and the general (stochastic) kernel loops so the two cannot
/// drift on collision semantics.
struct SlotBuffers {
    tx_mask: Vec<u64>,
    /// ≥ 1 in-range transmitter.
    once: Vec<u64>,
    /// ≥ 2 in-range transmitters.
    twice: Vec<u64>,
    /// transmitting ∪ (≥ 2 in range).
    lost: Vec<u64>,
    /// Bitset words touched this slot (cleared without O(n) sweeps).
    touched: Vec<u32>,
    /// `outcomes[i]`: how many of transmitter `tx_list[i]`'s neighbours decoded
    /// it, filled by [`SlotBuffers::resolve`].
    outcomes: Vec<u32>,
}

impl SlotBuffers {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        SlotBuffers {
            tx_mask: vec![0u64; words],
            once: vec![0u64; words],
            twice: vec![0u64; words],
            lost: vec![0u64; words],
            touched: Vec::with_capacity(words),
            outcomes: vec![0u32; n],
        }
    }

    /// Resolves one slot's interference for the given transmitter list: fills
    /// `outcomes[..tx_list.len()]` with per-transmitter decode counts and
    /// returns the number of receiving nodes (≥ 1 in-range transmitter, not
    /// transmitting). All buffers are cleared again before returning.
    fn resolve(&mut self, plan: &FramePlan, tx_list: &[u32]) -> u64 {
        // Pass 1: build the transmit mask.
        for &v in tx_list {
            self.tx_mask[(v / 64) as usize] |= 1u64 << (v % 64);
        }

        // Pass 2: in-range-transmitter counting, saturated at two, one bitset
        // word per word-grouped neighbour entry. Bits of `mask` already in
        // `once` have now been heard twice; duplicate neighbour ids occupy
        // separate entries, so they saturate exactly like repeated unit
        // increments.
        for &v in tx_list {
            let (entry_words, entry_bits) = plan.mask_entries(v as usize);
            for (&w, &mask) in entry_words.iter().zip(entry_bits) {
                let w = w as usize;
                let cur = self.once[w];
                if cur == 0 {
                    self.touched.push(w as u32);
                }
                self.twice[w] |= cur & mask;
                self.once[w] = cur | mask;
            }
        }
        // A neighbour loses the message iff it is itself transmitting or hears
        // ≥ 2 transmitters; every word the outcome pass reads carries at least
        // one once-bit, so materializing the union over the touched words gives
        // that pass a single load per edge.
        for &w in &self.touched {
            let w = w as usize;
            self.lost[w] = self.tx_mask[w] | self.twice[w];
        }

        // Pass 3: per-transmitter outcomes (collision mask reads), in parallel
        // for large transmitter sets.
        let tx_count = tx_list.len();
        {
            let lost = &self.lost;
            fill_chunks(&mut self.outcomes[..tx_count], |offset, chunk| {
                for (i, out) in chunk.iter_mut().enumerate() {
                    let v = tx_list[offset + i] as usize;
                    let (entry_words, entry_bits) = plan.mask_entries(v);
                    let mut decoded = 0u32;
                    for (&w, &mask) in entry_words.iter().zip(entry_bits) {
                        decoded += (mask & !lost[w as usize]).count_ones();
                    }
                    *out = decoded;
                }
            });
        }

        // Radio-state tally: receivers as popcounts over the touched words.
        let mut rx = 0u64;
        for &w in &self.touched {
            let w = w as usize;
            rx += u64::from((self.once[w] & !self.tx_mask[w]).count_ones());
        }

        // Clear only what this slot touched.
        for &w in &self.touched {
            let w = w as usize;
            self.once[w] = 0;
            self.twice[w] = 0;
        }
        self.touched.clear();
        for &v in tx_list {
            // A transmit-mask word only ever holds this slot's transmitters, so
            // zeroing the whole word is safe.
            self.tx_mask[(v / 64) as usize] = 0;
        }
        rx
    }
}

/// Runs a full simulation by replaying the compiled frame plan.
///
/// Produces counters identical to the reference simulator's for the same
/// workload — including stochastic ones, thanks to the counter-based RNG —
/// (verified by the cross-crate `sim_parity` property suite).
///
/// # Errors
///
/// Returns [`EngineError::InvalidKernelConfig`] for a zero traffic period, a
/// probability outside `[0, 1]`, or a traffic trace whose node or slot counts
/// do not cover the run.
pub fn run_frames(plan: &FramePlan, config: &KernelConfig) -> Result<KernelCounts> {
    let n = plan.num_nodes();
    match &config.traffic {
        KernelTraffic::Periodic { period: 0 } | KernelTraffic::Staggered { period: 0 } => {
            return Err(EngineError::InvalidKernelConfig(
                "periodic traffic period must be positive".into(),
            ));
        }
        KernelTraffic::Bernoulli { p } if !(0.0..=1.0).contains(p) => {
            return Err(EngineError::InvalidKernelConfig(
                "bernoulli probability must be in [0, 1]".into(),
            ));
        }
        KernelTraffic::Trace(trace)
            if trace.num_nodes() != n || trace.num_slots() < config.slots =>
        {
            return Err(EngineError::InvalidKernelConfig(format!(
                "traffic trace covers {} nodes x {} slots, run needs {} x {}",
                trace.num_nodes(),
                trace.num_slots(),
                n,
                config.slots
            )));
        }
        _ => {}
    }
    if let KernelMac::Aloha { p } = config.mac {
        if !(0.0..=1.0).contains(&p) {
            return Err(EngineError::InvalidKernelConfig(
                "aloha probability must be in [0, 1]".into(),
            ));
        }
    }

    if matches!(config.traffic, KernelTraffic::None) {
        // Without traffic nothing ever transmits: every node idles every slot.
        return Ok(KernelCounts {
            idle_slots: n as u64 * config.slots,
            ..KernelCounts::default()
        });
    }

    match (&config.traffic, config.mac) {
        (KernelTraffic::Periodic { period }, KernelMac::Scheduled) => {
            run_deterministic(plan, config, *period, false, FULL_BURST_MEMO_BYTE_BUDGET)
        }
        (KernelTraffic::Staggered { period }, KernelMac::Scheduled) => {
            run_deterministic(plan, config, *period, true, FULL_BURST_MEMO_BYTE_BUDGET)
        }
        _ => run_general(plan, config),
    }
}

/// The deterministic fast path: periodic (aligned or staggered) traffic under
/// scheduled access, with implicit arithmetic-progression queues, the O(1)
/// empty-slot skip and the full-burst memo.
fn run_deterministic(
    plan: &FramePlan,
    config: &KernelConfig,
    traffic_period: u64,
    staggered: bool,
    memo_budget: usize,
) -> Result<KernelCounts> {
    let n = plan.num_nodes();
    let mut counts = KernelCounts::default();
    let mut buffers = SlotBuffers::new(n);
    let mut tx_list: Vec<u32> = Vec::with_capacity(n);
    let mut queues = Queues {
        popped: vec![0u64; n],
        attempts: vec![0u32; n],
        queued_total: 0,
        traffic_period,
        max_retries: config.max_retries,
        staggered_ids: staggered.then(|| plan.original_ids()),
    };
    // Full-burst memo: when *every* candidate of a slot transmits, the
    // interference outcome is a pure function of the slot, so the first such
    // occurrence's per-transmitter decode counts and rx tally are recorded and
    // replayed on later full bursts in O(candidates) instead of O(edges). With
    // periodic traffic full bursts are the steady state, so this is the common
    // path; staggered phases only shift when each node reaches it. The memo is
    // content-hash keyed and byte-budgeted (see [`FullBurstMemo`]), so huge
    // frame periods no longer pin O(period + n) memory per run.
    let mut full_burst_memo = FullBurstMemo::new(memo_budget);

    let frame_period = plan.period() as u64;
    for t in 0..config.slots {
        // Number of nodes generating a packet in this slot (generation precedes
        // the MAC decision within a slot). Original ids are a permutation of
        // 0..n, so the staggered residue-class count has a closed form.
        let newly = if staggered {
            let r = t % traffic_period;
            if r < n as u64 {
                (n as u64 - 1 - r) / traffic_period + 1
            } else {
                0
            }
        } else if t.is_multiple_of(traffic_period) {
            n as u64
        } else {
            0
        };
        queues.queued_total += newly;
        // When the whole network's queues are empty the slot is skipped in
        // O(1) — with periodic traffic this covers the drained stretch of
        // every generation cycle.
        if queues.queued_total == 0 {
            counts.idle_slots += n as u64;
            continue;
        }
        let slot = (t % frame_period) as usize;

        // Backlogged candidates become transmitters. Candidates are a
        // contiguous relabelled-id range, so this is a sequential scan of
        // `popped`. Phase-aligned traffic shares one generation count across
        // the slot; staggered phases need the per-node count.
        let aligned_generated = t / traffic_period + 1;
        tx_list.clear();
        for v in plan.slot_candidates(slot) {
            let generated = if staggered {
                queues.generated(v, t)
            } else {
                aligned_generated
            };
            if generated > queues.popped[v] {
                tx_list.push(v as u32);
            }
        }
        if tx_list.is_empty() {
            counts.idle_slots += n as u64;
            continue;
        }
        let tx_count = tx_list.len();

        // Clean-slot shortcut: on a slot with no conflicts (per the plan's
        // conflict bitmask) outcomes are closed-form — no bitset passes.
        // Partially conflicting plans pay the passes only on their conflicted
        // slots.
        if !plan.slot_conflicted(slot) {
            settle_clean_slot(plan, &mut counts, &tx_list, n, t, |counts, v, degree, t| {
                queues.settle(counts, v, degree, degree, t)
            });
            continue;
        }
        let full_burst = tx_count == plan.slot_candidates(slot).len();

        if full_burst {
            if let Some((decoded, rx)) = full_burst_memo.get(plan, slot) {
                // Memoized fast path: bitsets untouched, queues updated from
                // the recorded outcomes.
                counts.transmissions += tx_count as u64;
                for (&v, &decoded) in tx_list.iter().zip(decoded.iter()) {
                    let v = v as usize;
                    queues.settle(&mut counts, v, decoded, plan.degree(v), t);
                }
                counts.tx_slots += tx_count as u64;
                counts.rx_slots += *rx;
                counts.idle_slots += n as u64 - tx_count as u64 - *rx;
                continue;
            }
        }

        // General path: full interference resolution.
        let rx = buffers.resolve(plan, &tx_list);
        counts.transmissions += tx_count as u64;
        for (&v, &decoded) in tx_list.iter().zip(&buffers.outcomes[..tx_count]) {
            let v = v as usize;
            queues.settle(&mut counts, v, decoded, plan.degree(v), t);
        }
        counts.tx_slots += tx_count as u64;
        counts.rx_slots += rx;
        counts.idle_slots += n as u64 - tx_count as u64 - rx;

        // Record the outcome of a full burst for replay on its next
        // occurrence (skipped silently once the byte budget is reached).
        if full_burst {
            full_burst_memo.insert(plan, slot, &buffers.outcomes[..tx_count], rx);
        }
    }

    if config.slots > 0 {
        // Per-node closed-form generation totals (phases are original ids,
        // a permutation of 0..n).
        if staggered {
            for id in 0..n as u64 {
                let phase = id % traffic_period;
                if config.slots > phase {
                    counts.packets_generated += (config.slots - 1 - phase) / traffic_period + 1;
                }
            }
        } else {
            counts.packets_generated = ((config.slots - 1) / traffic_period + 1) * n as u64;
        }
        counts.packets_pending =
            counts.packets_generated - counts.packets_delivered - counts.packets_dropped;
    }
    Ok(counts)
}

/// The per-residue generation bitmaps of staggered traffic: node `v` (original
/// id) generates at slots `t ≡ orig(v) (mod period)`, so one bitmap per
/// residue class lets the general loop enqueue exactly the generating nodes
/// instead of walking all of them every slot.
struct StaggerResidues {
    words: usize,
    /// Residue-major bitmaps over relabelled ids: bit `v` of residue `r` lives
    /// in `bits[r * words + v / 64]`.
    bits: Vec<u64>,
    /// Per-residue generator counts.
    counts: Vec<u32>,
}

impl StaggerResidues {
    /// Builds the residue bitmaps when the period is small enough to be worth
    /// materializing; longer periods return `None` (per-node walk instead).
    fn build(plan: &FramePlan, period: u64) -> Option<StaggerResidues> {
        let n = plan.num_nodes();
        let words = n.div_ceil(64);
        if period == 0 || period * words as u64 > STAGGER_RESIDUE_WORD_LIMIT {
            return None;
        }
        let mut bits = vec![0u64; period as usize * words];
        let mut counts = vec![0u32; period as usize];
        for (v, &ov) in plan.original_ids().iter().enumerate() {
            let r = (u64::from(ov) % period) as usize;
            bits[r * words + v / 64] |= 1u64 << (v % 64);
            counts[r] += 1;
        }
        Some(StaggerResidues {
            words,
            bits,
            counts,
        })
    }

    #[inline]
    fn words_at(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words..(r + 1) * self.words]
    }
}

/// The general loop: explicit per-node queues of generation times, supporting
/// every traffic model (counter-drawn Bernoulli, compiled traces, periodic)
/// under scheduled or slotted-ALOHA access.
fn run_general(plan: &FramePlan, config: &KernelConfig) -> Result<KernelCounts> {
    let n = plan.num_nodes();
    let orig = plan.original_ids();
    let traffic_rng = CounterRng::traffic(config.seed);
    let mac_rng = CounterRng::mac(config.seed);
    let mut counts = KernelCounts::default();
    let mut buffers = SlotBuffers::new(n);
    let mut tx_list: Vec<u32> = Vec::with_capacity(n);
    let mut state = ExplicitQueues::new(n, config.max_retries);

    // Stop walking every node per slot where the traffic model allows it:
    // inline Bernoulli runs above the size threshold auto-compile an internal
    // block trace (bit-identical by construction, and the batched build is
    // cheaper than the per-slot draws it replaces); staggered runs compile
    // per-residue generation bitmaps.
    let traffic: KernelTraffic = match &config.traffic {
        KernelTraffic::Bernoulli { p }
            if n as u64 * config.slots >= AUTO_TRACE_MIN_DRAWS
                && n.div_ceil(64) as u64 * config.slots <= TRACE_WORD_LIMIT =>
        {
            KernelTraffic::Trace(Arc::new(TrafficTrace::bernoulli(
                plan,
                config.seed,
                *p,
                config.slots,
            )?))
        }
        other => other.clone(),
    };
    let residues = match &traffic {
        KernelTraffic::Staggered { period } => StaggerResidues::build(plan, *period),
        _ => None,
    };

    let frame_period = plan.period() as u64;
    for t in 0..config.slots {
        // Traffic generation.
        match &traffic {
            KernelTraffic::Bernoulli { p } => {
                for (v, &ov) in orig.iter().enumerate() {
                    if traffic_rng.bernoulli(*p, u64::from(ov), t) {
                        state.push(v, t);
                        counts.packets_generated += 1;
                    }
                }
            }
            KernelTraffic::Trace(trace) => {
                if trace.count_at(t) > 0 {
                    for (w, &word) in trace.words_at(t).iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let v = w * 64 + bits.trailing_zeros() as usize;
                            state.queues[v].push_back(t);
                            bits &= bits - 1;
                        }
                        state.backlog[w] |= word;
                    }
                    state.queued_total += u64::from(trace.count_at(t));
                    counts.packets_generated += u64::from(trace.count_at(t));
                }
            }
            KernelTraffic::Periodic { period } => {
                if t.is_multiple_of(*period) {
                    for v in 0..n {
                        state.push(v, t);
                    }
                    counts.packets_generated += n as u64;
                }
            }
            KernelTraffic::Staggered { period } => {
                let r = t % period;
                match &residues {
                    Some(res) if res.counts[r as usize] > 0 => {
                        for (w, &word) in res.words_at(r as usize).iter().enumerate() {
                            let mut bits = word;
                            while bits != 0 {
                                let v = w * 64 + bits.trailing_zeros() as usize;
                                state.queues[v].push_back(t);
                                bits &= bits - 1;
                            }
                            state.backlog[w] |= word;
                        }
                        state.queued_total += u64::from(res.counts[r as usize]);
                        counts.packets_generated += u64::from(res.counts[r as usize]);
                    }
                    Some(_) => {}
                    None => {
                        for (v, &ov) in orig.iter().enumerate() {
                            if u64::from(ov) % period == r {
                                state.push(v, t);
                                counts.packets_generated += 1;
                            }
                        }
                    }
                }
            }
            KernelTraffic::None => {}
        }
        if state.queued_total == 0 {
            counts.idle_slots += n as u64;
            continue;
        }

        // MAC decisions over the slot's backlogged candidates: the candidate
        // range's backlogged members are the set bits of a word range of the
        // backlog mask, so an empty-ish slot costs a few word reads instead of
        // one queue-header read per candidate.
        let slot = (t % frame_period) as usize;
        let range = plan.slot_candidates(slot);
        tx_list.clear();
        if !range.is_empty() {
            let first_word = range.start / 64;
            let last_word = (range.end - 1) / 64;
            for w in first_word..=last_word {
                let mut bits = state.backlog[w];
                if w == first_word {
                    bits &= !0u64 << (range.start % 64);
                }
                let valid = range.end - w * 64;
                if valid < 64 {
                    bits &= (1u64 << valid) - 1;
                }
                while bits != 0 {
                    let v = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let transmit = match config.mac {
                        KernelMac::Scheduled => true,
                        KernelMac::Aloha { p } => mac_rng.bernoulli(p, u64::from(orig[v]), t),
                    };
                    if transmit {
                        tx_list.push(v as u32);
                    }
                }
            }
        }
        if tx_list.is_empty() {
            counts.idle_slots += n as u64;
            continue;
        }
        let tx_count = tx_list.len();

        // Clean-slot shortcut (see `run_deterministic`): deliveries and the
        // rx tally are closed-form, no bitset passes needed; only conflicted
        // slots of the plan pay interference resolution.
        if !plan.slot_conflicted(slot) {
            settle_clean_slot(plan, &mut counts, &tx_list, n, t, |counts, v, degree, t| {
                state.settle(counts, v, degree, degree, t)
            });
            continue;
        }

        let rx = buffers.resolve(plan, &tx_list);
        counts.transmissions += tx_count as u64;
        for (&v, &decoded) in tx_list.iter().zip(&buffers.outcomes[..tx_count]) {
            let v = v as usize;
            state.settle(&mut counts, v, decoded, plan.degree(v), t);
        }
        counts.tx_slots += tx_count as u64;
        counts.rx_slots += rx;
        counts.idle_slots += n as u64 - tx_count as u64 - rx;
    }

    counts.packets_pending = state.queued_total;
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::{FrameSchedule, InterferenceCsr};

    /// 0 — 1 — 2 in a line, each affecting its immediate neighbours.
    fn line3() -> InterferenceCsr {
        InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]]).unwrap()
    }

    fn plan(slots: &[usize], period: usize) -> FramePlan {
        let frames = FrameSchedule::from_assignment(slots, period).unwrap();
        FramePlan::new(&frames, &line3()).unwrap()
    }

    fn config(slots: u64, traffic: KernelTraffic, max_retries: u32) -> KernelConfig {
        KernelConfig {
            slots,
            traffic,
            mac: KernelMac::Scheduled,
            max_retries,
            seed: 7,
        }
    }

    #[test]
    fn collision_free_frames_deliver_everything() {
        // 3 slots, one node each: no two in-range nodes share a slot.
        let counts = run_frames(
            &plan(&[0, 1, 2], 3),
            &config(30, KernelTraffic::Periodic { period: 10 }, 8),
        )
        .unwrap();
        assert_eq!(counts.packets_generated, 9);
        assert_eq!(counts.collisions, 0);
        assert_eq!(counts.packets_dropped, 0);
        assert_eq!(
            counts.packets_generated,
            counts.packets_delivered + counts.packets_pending
        );
        // One transmission per delivered packet.
        assert_eq!(counts.transmissions, counts.packets_delivered);
        assert_eq!(
            counts.tx_slots + counts.rx_slots + counts.idle_slots,
            3 * 30
        );
    }

    #[test]
    fn shared_slots_collide_and_drop_after_retries() {
        // Nodes 0 and 2 share slot 0 and both affect node 1: every transmission
        // collides at node 1, so every packet is eventually dropped.
        let counts = run_frames(
            &plan(&[0, 1, 0], 2),
            &config(40, KernelTraffic::Periodic { period: 40 }, 1),
        )
        .unwrap();
        assert!(counts.collisions > 0);
        // Node 1 transmits alone and delivers; 0 and 2 drop after 2 attempts.
        assert_eq!(counts.packets_delivered, 1);
        assert_eq!(counts.packets_dropped, 2);
        assert_eq!(counts.packets_pending, 0);
    }

    #[test]
    fn no_traffic_is_all_idle() {
        let counts = run_frames(&plan(&[0, 1, 2], 3), &config(17, KernelTraffic::None, 3)).unwrap();
        assert_eq!(
            counts,
            KernelCounts {
                idle_slots: 3 * 17,
                ..KernelCounts::default()
            }
        );
    }

    #[test]
    fn zero_slots_is_a_no_op() {
        let counts = run_frames(
            &plan(&[0, 1, 2], 3),
            &config(0, KernelTraffic::Periodic { period: 4 }, 0),
        )
        .unwrap();
        assert_eq!(counts, KernelCounts::default());
    }

    #[test]
    fn staggered_traffic_spreads_generation_phases() {
        // Collision-free plan: each node's generation phase is its original id
        // mod the traffic period, so packets are spread over time.
        let counts = run_frames(
            &plan(&[0, 1, 2], 3),
            &config(30, KernelTraffic::Staggered { period: 3 }, 8),
        )
        .unwrap();
        assert_eq!(counts.packets_generated, 30);
        assert_eq!(counts.collisions, 0);
        assert_eq!(
            counts.packets_generated,
            counts.packets_delivered + counts.packets_pending
        );
        // Node 0 generates at t=0,3,..., node 2 at t=2,5,...: totals match the
        // closed form (slots - 1 - phase) / period + 1.
        let by_hand: u64 = (0..3u64).map(|phase| (30 - 1 - phase) / 3 + 1).sum();
        assert_eq!(counts.packets_generated, by_hand);
    }

    #[test]
    fn bernoulli_traffic_conserves_packets_and_replays() {
        let plan = plan(&[0, 1, 2], 3);
        let cfg = config(200, KernelTraffic::Bernoulli { p: 0.2 }, 2);
        let a = run_frames(&plan, &cfg).unwrap();
        let b = run_frames(&plan, &cfg).unwrap();
        assert_eq!(a, b, "counter-based draws replay bit-identically");
        assert!(a.packets_generated > 0);
        assert_eq!(
            a.packets_generated,
            a.packets_delivered + a.packets_dropped + a.packets_pending
        );
        assert_eq!(a.tx_slots + a.rx_slots + a.idle_slots, 3 * 200);
    }

    #[test]
    fn transpose64_matches_the_naive_definition() {
        // Pseudo-random but deterministic 64x64 matrix.
        let rng = CounterRng::new(5, 5);
        let mut a = [0u64; 64];
        for (i, w) in a.iter_mut().enumerate() {
            *w = rng.draw(i as u64, 0);
        }
        let mut t = a;
        transpose64(&mut t);
        for (i, &row) in a.iter().enumerate() {
            for (j, &col) in t.iter().enumerate() {
                assert_eq!(
                    col >> i & 1,
                    row >> j & 1,
                    "bit ({i}, {j}) must move to ({j}, {i})"
                );
            }
        }
        // Transposing twice is the identity.
        transpose64(&mut t);
        assert_eq!(t, a);
    }

    #[test]
    fn batched_trace_build_matches_per_draw_construction() {
        // The block-wise build (hoisted keys, integer thresholds, bit
        // transpose) must reproduce naive per-(node, slot) draws bit for bit,
        // including at ragged node/slot counts that exercise the padding.
        for (nodes, slots) in [(1usize, 1u64), (3, 70), (64, 64), (65, 130), (130, 65)] {
            let assignment: Vec<usize> = (0..nodes).map(|v| v % 3).collect();
            let lists: Vec<Vec<usize>> = (0..nodes)
                .map(|v| if v + 1 < nodes { vec![v + 1] } else { vec![] })
                .collect();
            let adjacency = InterferenceCsr::from_lists(&lists).unwrap();
            let frames = FrameSchedule::from_assignment(&assignment, 3).unwrap();
            let plan = FramePlan::new(&frames, &adjacency).unwrap();
            for p in [0.0, 0.037, 0.5, 1.0] {
                let trace = TrafficTrace::bernoulli(&plan, 99, p, slots).unwrap();
                let rng = CounterRng::traffic(99);
                let orig = plan.original_ids();
                let mut total = 0u64;
                for t in 0..slots {
                    let words = trace.words_at(t);
                    let mut count = 0u32;
                    for (v, &ov) in orig.iter().enumerate() {
                        let expected = rng.bernoulli(p, u64::from(ov), t);
                        let got = words[v / 64] >> (v % 64) & 1 == 1;
                        assert_eq!(got, expected, "n={nodes} slots={slots} p={p} v={v} t={t}");
                        count += u32::from(expected);
                    }
                    assert_eq!(trace.count_at(t), count);
                    // Padding bits beyond `nodes` stay clear.
                    let tail_bits: u32 = words.iter().map(|w| w.count_ones()).sum();
                    assert_eq!(tail_bits, count, "padding bits leaked at t={t}");
                    total += u64::from(count);
                }
                assert_eq!(trace.total_generated(), total);
            }
        }
    }

    #[test]
    fn partially_conflicting_plans_narrow_to_clean_slots() {
        // Assignment [0, 1, 0] on the 3-line: slot 0 (nodes 0 and 2 sharing
        // neighbour 1) conflicts, slot 1 (node 1 alone) is clean.
        let partial = plan(&[0, 1, 0], 2);
        assert!(!partial.conflict_free());
        assert_eq!(partial.conflicted_slots(), 1);
        assert!(partial.slot_conflicted(0));
        assert!(!partial.slot_conflicted(1));

        // The bitmask-narrowed kernel must match the full-bitset oracle
        // (every slot forced conflicted) bit for bit, across deterministic
        // and stochastic workloads.
        let mut oracle = partial.clone();
        oracle.pessimize_conflicts();
        assert_eq!(oracle.conflicted_slots(), 2);
        for traffic in [
            KernelTraffic::Periodic { period: 3 },
            KernelTraffic::Staggered { period: 2 },
            KernelTraffic::Bernoulli { p: 0.3 },
        ] {
            for retries in [0u32, 2] {
                let cfg = config(200, traffic.clone(), retries);
                let narrowed = run_frames(&partial, &cfg).unwrap();
                let full = run_frames(&oracle, &cfg).unwrap();
                assert_eq!(narrowed, full, "traffic {traffic:?} retries {retries}");
                assert!(narrowed.packets_generated > 0);
            }
        }
    }

    #[test]
    fn auto_compiled_traces_match_explicit_traces_and_thresholds() {
        // Above the auto-trace threshold the inline Bernoulli path compiles an
        // internal trace; its counters must equal an explicit-trace run (and a
        // below-threshold inline run of the same seed/p agrees on the shared
        // prefix workload by construction of the counter RNG).
        let plan = plan(&[0, 1, 0], 2);
        let slots = 2_000; // 3 nodes x 2000 slots = 6000 >= AUTO_TRACE_MIN_DRAWS
        assert!(3 * slots >= AUTO_TRACE_MIN_DRAWS);
        let inline_cfg = config(slots, KernelTraffic::Bernoulli { p: 0.21 }, 1);
        let trace = TrafficTrace::bernoulli(&plan, inline_cfg.seed, 0.21, slots).unwrap();
        let traced_cfg = config(slots, KernelTraffic::Trace(Arc::new(trace)), 1);
        let a = run_frames(&plan, &inline_cfg).unwrap();
        let b = run_frames(&plan, &traced_cfg).unwrap();
        assert_eq!(a, b);
        assert!(a.packets_generated > 0);
    }

    #[test]
    fn staggered_residue_bitmaps_match_the_per_node_walk() {
        // Force the stochastic (general) loop with an ALOHA MAC so staggered
        // generation runs through the residue bitmaps.
        let plan = plan(&[0, 1, 2], 3);
        let mut cfg = config(300, KernelTraffic::Staggered { period: 4 }, 2);
        cfg.mac = KernelMac::Aloha { p: 0.7 };
        let counts = run_frames(&plan, &cfg).unwrap();
        // Generation totals follow the closed form regardless of the MAC.
        let by_hand: u64 = (0..3u64).map(|id| (300 - 1 - id % 4) / 4 + 1).sum();
        assert_eq!(counts.packets_generated, by_hand);
        assert_eq!(
            counts.packets_generated,
            counts.packets_delivered + counts.packets_dropped + counts.packets_pending
        );
        // A period too long to materialize falls back to the per-node walk:
        // each node generates exactly once (at t = original id) within 300
        // slots, and totals stay conserved.
        let mut long_cfg = config(
            300,
            KernelTraffic::Staggered {
                period: STAGGER_RESIDUE_WORD_LIMIT + 1,
            },
            2,
        );
        long_cfg.mac = KernelMac::Aloha { p: 0.7 };
        let long_counts = run_frames(&plan, &long_cfg).unwrap();
        assert_eq!(long_counts.packets_generated, 3);
        assert_eq!(
            long_counts.packets_generated,
            long_counts.packets_delivered
                + long_counts.packets_dropped
                + long_counts.packets_pending
        );
    }

    #[test]
    fn traces_replay_identically_to_inline_bernoulli_draws() {
        let plan = plan(&[0, 1, 0], 2);
        let inline_cfg = config(300, KernelTraffic::Bernoulli { p: 0.15 }, 1);
        let trace = TrafficTrace::bernoulli(&plan, inline_cfg.seed, 0.15, 300).unwrap();
        assert_eq!(trace.num_nodes(), 3);
        assert_eq!(trace.num_slots(), 300);
        let traced_cfg = config(300, KernelTraffic::Trace(Arc::new(trace)), 1);
        let inline_counts = run_frames(&plan, &inline_cfg).unwrap();
        let traced_counts = run_frames(&plan, &traced_cfg).unwrap();
        assert_eq!(inline_counts, traced_counts);
        assert!(inline_counts.packets_generated > 0);
    }

    #[test]
    fn aloha_mac_thins_transmissions() {
        // All nodes candidates every slot (period-1 plan), ALOHA p = 0.5 under
        // saturating traffic: some backlogged nodes hold back each slot.
        let plan = plan(&[0, 0, 0], 1);
        let mut cfg = config(100, KernelTraffic::Periodic { period: 1 }, 0);
        cfg.mac = KernelMac::Aloha { p: 0.5 };
        let counts = run_frames(&plan, &cfg).unwrap();
        assert!(counts.transmissions > 0);
        assert!(
            counts.transmissions < 300,
            "p=0.5 must hold some transmissions back"
        );
        assert_eq!(
            counts.packets_generated,
            counts.packets_delivered + counts.packets_dropped + counts.packets_pending
        );
        // Degenerate probabilities are deterministic.
        cfg.mac = KernelMac::Aloha { p: 0.0 };
        let silent = run_frames(&plan, &cfg).unwrap();
        assert_eq!(silent.transmissions, 0);
    }

    /// A conflicted plan with `pairs` slots, two interfering nodes per slot:
    /// every slot's full burst collides, so every visited slot wants a memo
    /// entry.
    fn paired_plan(pairs: usize) -> FramePlan {
        let n = 2 * pairs;
        let assignment: Vec<usize> = (0..n).map(|v| v / 2).collect();
        let lists: Vec<Vec<usize>> = (0..n)
            .map(|v| vec![if v % 2 == 0 { v + 1 } else { v - 1 }])
            .collect();
        let adjacency = InterferenceCsr::from_lists(&lists).unwrap();
        let frames = FrameSchedule::from_assignment(&assignment, pairs).unwrap();
        FramePlan::new(&frames, &adjacency).unwrap()
    }

    #[test]
    fn full_burst_memo_stays_under_its_byte_budget_on_large_periods() {
        // Direct accounting check: inserting one outcome per slot of a
        // large-period schedule must stop charging once the budget is hit,
        // never exceed it, and keep answering for the entries it kept.
        let plan = paired_plan(2048); // 2048-slot period, 4096 nodes
        let budget = 4096usize;
        let mut memo = FullBurstMemo::new(budget);
        let outcomes = [1u32, 1];
        for slot in 0..plan.period() {
            memo.insert(&plan, slot, &outcomes, 2);
            assert!(memo.bytes() <= budget, "budget exceeded at slot {slot}");
        }
        assert!(memo.bytes() > 0, "some entries fit");
        assert!(
            memo.entries.len() < plan.period(),
            "the budget must reject most of a large period"
        );
        // Kept entries replay; rejected ones report a miss.
        let kept = memo.entries.len();
        let hits = (0..plan.period())
            .filter(|&s| memo.get(&plan, s).is_some())
            .count();
        assert_eq!(hits, kept);
        // Re-inserting a kept slot charges nothing twice.
        let bytes = memo.bytes();
        memo.insert(&plan, 0, &outcomes, 2);
        assert_eq!(memo.bytes(), bytes);
    }

    #[test]
    fn capped_memo_never_changes_deterministic_results() {
        // The memo is a pure replay cache: running with a zero budget (every
        // burst recomputed), a tiny budget (some replayed) and an unbounded
        // one must produce identical counters on a conflicted large-period
        // schedule.
        let plan = paired_plan(64);
        for (traffic_period, staggered) in [(1u64, false), (3, false), (5, true)] {
            let cfg = config(
                400,
                if staggered {
                    KernelTraffic::Staggered {
                        period: traffic_period,
                    }
                } else {
                    KernelTraffic::Periodic {
                        period: traffic_period,
                    }
                },
                1,
            );
            let unbounded =
                run_deterministic(&plan, &cfg, traffic_period, staggered, usize::MAX).unwrap();
            let capped = run_deterministic(&plan, &cfg, traffic_period, staggered, 256).unwrap();
            let disabled = run_deterministic(&plan, &cfg, traffic_period, staggered, 0).unwrap();
            assert_eq!(unbounded, capped, "period {traffic_period}");
            assert_eq!(unbounded, disabled, "period {traffic_period}");
            assert!(unbounded.collisions > 0, "the paired plan must conflict");
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let frames = FrameSchedule::from_assignment(&[0, 1], 2).unwrap();
        assert!(matches!(
            FramePlan::new(&frames, &line3()),
            Err(EngineError::NodeCountMismatch { .. })
        ));
        let p = plan(&[0, 1, 2], 3);
        for bad in [
            KernelTraffic::Periodic { period: 0 },
            KernelTraffic::Staggered { period: 0 },
            KernelTraffic::Bernoulli { p: 1.5 },
        ] {
            assert!(matches!(
                run_frames(&p, &config(1, bad, 0)),
                Err(EngineError::InvalidKernelConfig(_))
            ));
        }
        let mut cfg = config(1, KernelTraffic::Periodic { period: 1 }, 0);
        cfg.mac = KernelMac::Aloha { p: -0.1 };
        assert!(matches!(
            run_frames(&p, &cfg),
            Err(EngineError::InvalidKernelConfig(_))
        ));
        // Undersized traces are rejected.
        let trace = TrafficTrace::bernoulli(&p, 1, 0.5, 10).unwrap();
        assert!(matches!(
            run_frames(&p, &config(20, KernelTraffic::Trace(Arc::new(trace)), 0)),
            Err(EngineError::InvalidKernelConfig(_))
        ));
        assert!(TrafficTrace::bernoulli(&p, 1, 7.0, 10).is_err());
    }
}
