//! The frame-compiled simulation kernel.
//!
//! Replays a precompiled [`FramePlan`] (per-slot transmitter sets fused with a
//! CSR interference adjacency, relabelled slot-major) for a whole simulation
//! window, producing exactly the integer counters of the
//! reference slot-by-slot simulator (`latsched_sensornet::run_simulation`).
//! The reference simulator walks every node in every slot; this kernel
//! exploits the structure that simulator re-derives each slot:
//!
//! * **Candidates, not nodes.** Only the current slot's candidate range is
//!   scanned for backlog — `O(n/m)` per slot instead of `O(n)` — and the plan's
//!   slot-major relabelling makes that range (and its adjacency data) one
//!   contiguous streamed block. A network-wide queued-packet counter skips
//!   entirely empty slots in `O(1)`.
//! * **Implicit queues.** Under periodic traffic every node's queue is an
//!   arithmetic progression: the head packet of node `v` was generated at
//!   `phase(v) + popped[v] · period`, so queues shrink to two counters per
//!   node and packet objects are never allocated. (Stochastic traffic uses
//!   explicit per-node queues of generation times instead.)
//! * **Bitset interference.** The per-slot transmit set, "heard ≥ 1
//!   transmitter" and "heard ≥ 2 transmitters" predicates live in `u64` bitset
//!   words. Saturating the in-range count at two is enough to decide every
//!   collision, and per-slot radio-energy tallies are word `popcount`s over the
//!   touched words only. All per-slot passes are allocation-free; buffers are
//!   cleared via touched-word lists rather than `O(n)` sweeps.
//! * **Counter-based randomness.** Stochastic draws (Bernoulli traffic,
//!   slotted-ALOHA decisions) come from a stateless
//!   [`CounterRng`](latsched_lattice::CounterRng): `draw = hash(seed, node,
//!   slot)`. Because a draw depends only on its coordinates — never on the
//!   order draws are made — this kernel reproduces the reference simulator's
//!   stochastic runs bit for bit while touching only the nodes it needs to.
//!   Draws are keyed by *original* (pre-relabelling) node ids.
//! * **Compiled traffic traces.** A [`TrafficTrace`] bakes all Bernoulli
//!   generation draws of a `(seed, p)` pair into per-slot bitmaps once.
//!   Builds are block-wise batched: each node's draws come from
//!   [`CounterRng::bernoulli_block`] (one hoisted key and one integer
//!   threshold per 64 draws), fanned across worker threads node by node, and
//!   a 64×64 bit transpose turns the node-major draw matrix slot-major.
//!   Traces are shared through the engine's content-addressed
//!   [`TraceCache`](crate::TraceCache), so sweeps, the retry axis of a grid
//!   and repeated benchmark samples never rebuild one — and the general loop
//!   *auto-compiles* an internal trace for inline Bernoulli runs above a size
//!   threshold, so stochastic runs stop walking every node in every slot
//!   (staggered periodic runs get per-residue generation bitmaps for the same
//!   reason). Slotted-ALOHA MAC decisions compile the same way
//!   ([`TrafficTrace::aloha_decisions`], replayed via
//!   [`KernelMac::AlohaTrace`]), so the MAC draws of a `(seed, p)` pair are
//!   hashed once per sweep instead of once per run.
//! * **Partial-conflict narrowing.** The plan carries a per-slot conflict
//!   bitmask: clean slots (no same-slot neighbour candidates, no shared
//!   receivers) take a closed-form outcome path — `decoded = degree`,
//!   `rx = Σ degree` — and only conflicted slots pay bitset passes. Fully
//!   conflict-free plans (the paper's tiling schedules) never touch a bitset.
//! * **Parallel outcome pass.** Per-transmitter delivery outcomes are
//!   data-parallel once the bitsets are built; conflicted slots with ≥ 8k
//!   transmitters chunk their outcome pass across worker threads with the
//!   engine's scoped-thread executor. (Clean slots need no outcome pass at
//!   all — their accounting is one fused add-and-settle walk.)
//! * **Analytic replay.** On a conflict-free plan under scheduled access the
//!   clean-slot closed form extends from slots to whole runs: every
//!   transmission delivers, service opportunities of a node form an
//!   arithmetic progression (one per frame period), and the FIFO service
//!   recurrence `d = max(first_service ≥ arrival, previous + period)` settles
//!   each packet in O(1) — [`run_frames`] dispatches such runs to a
//!   no-slot-loop path costing `O(deliveries)` (periodic traffic) or one pass
//!   over the arrival bitmaps (traces), with [`run_frames_loop`] as the
//!   measured escape hatch.
//! * **Bit-sliced seed lanes.** [`run_frames_lanes`] packs up to 64 seeds of
//!   one configuration into `u64` lane words: one candidate scan, one
//!   adjacency walk and one batched counter-RNG lane draw per slot serve all
//!   seeds, interference saturating-counts resolve lane-parallel, and
//!   per-lane tallies fall out of 64×64 bit transposes — turning the seed
//!   axis of a sweep into near-free word width while staying bit-identical
//!   to scalar per-seed runs.
//!
//! Floating-point energy is deliberately *not* computed here: the kernel
//! reports integer slot counts (`tx_slots`/`rx_slots`/`idle_slots`) so callers
//! can apply any energy model exactly, with bit-identical results to a
//! counter-based reference.

use crate::error::{EngineError, Result};
use crate::frames::FramePlan;
use crate::parallel::{fill_chunks, fill_chunks_min};
use latsched_lattice::CounterRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// The traffic models the kernel can replay.
#[derive(Clone, PartialEq, Debug)]
pub enum KernelTraffic {
    /// Every node generates one packet every `period` slots, phase-aligned at
    /// slot 0.
    Periodic {
        /// Slots between consecutive packets of one node (must be positive).
        period: u64,
    },
    /// Every node generates one packet every `period` slots, staggered: node
    /// `v` (original id) generates at slots `t ≡ v (mod period)`.
    Staggered {
        /// Slots between consecutive packets of one node (must be positive).
        period: u64,
    },
    /// Every node independently generates a packet in each slot with
    /// probability `p`, drawn from the counter RNG's traffic stream of the
    /// run's seed.
    Bernoulli {
        /// Per-slot generation probability (must be in `[0, 1]`).
        p: f64,
    },
    /// A precompiled generation trace (see [`TrafficTrace`]); replays exactly
    /// like the [`KernelTraffic::Bernoulli`] model the trace was built from,
    /// amortizing the draws across the runs of a sweep.
    Trace(Arc<TrafficTrace>),
    /// No traffic is generated.
    None,
}

/// The per-slot transmit policy of backlogged candidates.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum KernelMac {
    /// Deterministic slotted access: every backlogged candidate of the current
    /// frame slot transmits.
    #[default]
    Scheduled,
    /// Slotted ALOHA: a backlogged candidate transmits with probability `p`,
    /// drawn from the counter RNG's MAC stream of the run's seed. (Use an
    /// all-candidates, period-1 plan to model classic unslotted-schedule
    /// ALOHA.)
    Aloha {
        /// Per-slot transmission probability (must be in `[0, 1]`).
        p: f64,
    },
    /// Slotted ALOHA replayed from a precompiled per-`(seed, p)` decision
    /// bitmap (see [`TrafficTrace::aloha_decisions`]): bit-identical to the
    /// [`KernelMac::Aloha`] model the trace was built from, amortizing the MAC
    /// hash draws across the runs of a sweep the way compiled traffic traces
    /// already amortize generation draws.
    AlohaTrace(Arc<TrafficTrace>),
}

/// Configuration of one kernel run.
#[derive(Clone, PartialEq, Debug)]
pub struct KernelConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// The traffic model.
    pub traffic: KernelTraffic,
    /// The MAC decision applied to backlogged candidates.
    pub mac: KernelMac,
    /// How many times an undelivered packet is retransmitted before being
    /// dropped (`0` means each packet is transmitted exactly once).
    pub max_retries: u32,
    /// Seed of the counter-based RNG streams (ignored by fully deterministic
    /// configurations).
    pub seed: u64,
}

/// The integer counters of one kernel run; field meanings match
/// `latsched_sensornet::SimMetrics`, plus the radio-state slot counts from
/// which any energy model can be applied exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KernelCounts {
    /// Packets generated across all nodes.
    pub packets_generated: u64,
    /// Packets whose broadcast reached every intended neighbour.
    pub packets_delivered: u64,
    /// Packets dropped after exhausting their retransmission budget.
    pub packets_dropped: u64,
    /// Packets still queued when the simulation ended.
    pub packets_pending: u64,
    /// Individual transmissions performed.
    pub transmissions: u64,
    /// Successful link-level receptions.
    pub receptions: u64,
    /// Link-level losses (receiver transmitting, or ≥ 2 in-range transmitters).
    pub collisions: u64,
    /// Sum of per-packet delivery latencies in slots, over delivered packets.
    pub total_latency: u64,
    /// Node-slots spent transmitting.
    pub tx_slots: u64,
    /// Node-slots spent receiving (≥ 1 in-range transmitter, not transmitting).
    pub rx_slots: u64,
    /// Node-slots spent idle.
    pub idle_slots: u64,
}

impl KernelCounts {
    /// Adds another run's counters into this one (used by sweep aggregation).
    pub fn accumulate(&mut self, other: &KernelCounts) {
        self.packets_generated += other.packets_generated;
        self.packets_delivered += other.packets_delivered;
        self.packets_dropped += other.packets_dropped;
        self.packets_pending += other.packets_pending;
        self.transmissions += other.transmissions;
        self.receptions += other.receptions;
        self.collisions += other.collisions;
        self.total_latency += other.total_latency;
        self.tx_slots += other.tx_slots;
        self.rx_slots += other.rx_slots;
        self.idle_slots += other.idle_slots;
    }
}

/// Upper bound on `words × slots` of one compiled traffic trace: 2^28 words
/// = 2 GiB of bitmap; the cap keeps accidental huge specs from crashing the
/// process. `pub(crate)` so the sweep engine applies the same guard before
/// prefetching MAC decision bitmaps.
pub(crate) const TRACE_WORD_LIMIT: u64 = 1 << 28;

/// Draw-matrix words below which a trace build stays on the calling thread;
/// one word is 64 hoisted-key draws, so this is ~64k draws of work.
const TRACE_PARALLEL_MIN_WORDS: usize = 1 << 10;

/// Inline-Bernoulli runs with at least this many `node × slot` draws
/// auto-compile an internal [`TrafficTrace`] instead of drawing per node per
/// slot: the block build pays one `mix64` per draw (the inline path pays two
/// plus a float compare) and the replay touches only generating nodes.
const AUTO_TRACE_MIN_DRAWS: u64 = 1 << 12;

/// Upper bound on `period × words` of the per-residue generation bitmaps the
/// general loop compiles for staggered traffic (32 MiB); longer periods fall
/// back to the per-node walk.
const STAGGER_RESIDUE_WORD_LIMIT: u64 = 1 << 22;

/// Partial-conflict analytic dispatch threshold, as a denominator: plans with
/// at most `period / ANALYTIC_CONFLICT_DENOM` conflicted slots replay hybrid
/// (clean classes closed-form, conflicted classes on a narrowed slot loop).
/// Beyond that fraction the narrowed loop approaches the full loop's cost and
/// the closed-form side stops paying for its setup.
const ANALYTIC_CONFLICT_DENOM: usize = 4;

/// Byte budget of the deterministic loop's full-burst memo (1 MiB). The memo
/// used to hold one `Vec<u32>` slot for every slot of the frame period, so a
/// huge-period schedule (TDMA on a big window) pinned O(n) memory per run
/// even when only a few slots ever replayed; the budget bounds it regardless
/// of period.
const FULL_BURST_MEMO_BYTE_BUDGET: usize = 1 << 20;

/// Approximate bookkeeping bytes charged per memo entry (hash-map slot, key,
/// lengths) on top of the recorded outcome array.
const FULL_BURST_ENTRY_OVERHEAD: usize = 64;

/// The bounded memo of full-burst slot outcomes.
///
/// When *every* candidate of a slot transmits, the interference outcome is a
/// pure function of the slot's content, so the per-transmitter decode counts
/// and rx tally recorded on the first full burst replay later ones in
/// O(candidates) instead of O(edges). Entries are keyed by the slot's content
/// — its candidate range within the plan's relabelled id space, which
/// determines the transmit set and its adjacency — and the memo stops
/// admitting entries once a byte budget is reached: replay degrades
/// gracefully to full interference resolution, results are unchanged, and
/// huge-period schedules no longer pin O(period + n) memo memory.
struct FullBurstMemo {
    entries: std::collections::HashMap<u64, (Box<[u32]>, u64)>,
    bytes: usize,
    budget: usize,
}

impl FullBurstMemo {
    fn new(budget: usize) -> Self {
        FullBurstMemo {
            entries: std::collections::HashMap::new(),
            bytes: 0,
            budget,
        }
    }

    /// The content key of a slot: its packed candidate range in the plan's
    /// relabelled id space. Slot-major relabelling makes the range determine
    /// the candidate set (hence the full-burst outcome), ranges of distinct
    /// slots are disjoint, and node counts fit in 32 bits (enforced by the
    /// CSR size limits) — so the packing is injective and lookups are exact,
    /// no hashing involved.
    #[inline]
    fn key(plan: &FramePlan, slot: usize) -> u64 {
        let range = plan.slot_candidates(slot);
        (range.start as u64) << 32 | range.end as u64
    }

    /// The recorded outcome of a slot's full burst, if memoized.
    #[inline]
    fn get(&self, plan: &FramePlan, slot: usize) -> Option<&(Box<[u32]>, u64)> {
        self.entries.get(&Self::key(plan, slot))
    }

    /// Records a full-burst outcome unless it would exceed the byte budget
    /// (over-budget outcomes are simply recomputed on later bursts).
    fn insert(&mut self, plan: &FramePlan, slot: usize, outcomes: &[u32], rx: u64) {
        let cost = std::mem::size_of_val(outcomes) + FULL_BURST_ENTRY_OVERHEAD;
        if self.bytes + cost > self.budget {
            return;
        }
        if self
            .entries
            .insert(Self::key(plan, slot), (outcomes.into(), rx))
            .is_none()
        {
            self.bytes += cost;
        }
    }

    /// Bytes currently charged against the budget (regression-test hook).
    #[cfg(test)]
    fn bytes(&self) -> usize {
        self.bytes
    }
}

/// The closed-form outcome accounting of one clean (conflict-free) slot: every
/// transmitter delivers to all of its neighbours and same-slot receiver sets
/// are disjoint, so `rx` is the degree sum and no bitset pass runs. `settle`
/// applies one delivery (`decoded = degree`) to the caller's queue state —
/// the single shared implementation behind both kernel loops, so their
/// clean-slot accounting cannot drift. (Conflicted slots run
/// [`SlotBuffers::resolve`], whose per-transmitter outcome pass parallelizes
/// at ≥ 8k transmitters; here the whole outcome is one add per transmitter,
/// fused into the settle walk.)
#[inline]
fn settle_clean_slot(
    plan: &FramePlan,
    counts: &mut KernelCounts,
    tx_list: &[u32],
    n: usize,
    t: u64,
    mut settle: impl FnMut(&mut KernelCounts, usize, u32, u64),
) {
    let tx_count = tx_list.len() as u64;
    counts.transmissions += tx_count;
    let mut rx = 0u64;
    for &v in tx_list {
        let v = v as usize;
        let degree = plan.degree(v);
        rx += u64::from(degree);
        settle(counts, v, degree, t);
    }
    counts.tx_slots += tx_count;
    counts.rx_slots += rx;
    counts.idle_slots += n as u64 - tx_count - rx;
}

/// Transposes a 64×64 bit matrix in place: bit `j` of word `i` moves to bit
/// `i` of word `j`. The classic recursive block swap (Hacker's Delight §7-3)
/// adapted to the LSB-first column convention used by the trace bitmaps.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// All Bernoulli generation draws of one `(seed, p)` pair over a plan's node
/// set, compiled into per-slot bitmaps in the plan's relabelled id space.
///
/// Draws are keyed by original node ids (via [`FramePlan::original_ids`]), so
/// a trace replays exactly like the inline [`KernelTraffic::Bernoulli`] model
/// it was compiled from — the point is amortization: a sweep that varies retry
/// budgets or MAC parameters across runs of one `(seed, p)` pair pays the
/// `n × slots` hash draws once instead of once per run.
#[derive(Clone, PartialEq, Debug)]
pub struct TrafficTrace {
    nodes: usize,
    slots: u64,
    words: usize,
    /// Slot-major generation bitmaps: bit `v` of slot `t` lives in
    /// `bits[t * words + v / 64]`.
    bits: Vec<u64>,
    /// Per-slot generator counts (popcount of the slot's bitmap).
    counts: Vec<u32>,
}

impl TrafficTrace {
    /// Compiles the Bernoulli(`p`) generation draws of `seed`'s traffic stream
    /// over `slots` slots of the plan's node set.
    ///
    /// The build is block-wise batched: each node's draws along the slot axis
    /// come from [`CounterRng::bernoulli_block`] — one hoisted node key and
    /// one precomputed integer threshold per 64 draws — assembled as 64×64
    /// bit-transposed tiles streamed straight into the slot-major bitmap,
    /// with the slot bands fanned across worker threads above a size
    /// threshold. The result is bit-identical to per-`(node, slot)`
    /// [`CounterRng::bernoulli`] draws.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidKernelConfig`] for a probability outside
    /// `[0, 1]` or a trace exceeding the size cap.
    pub fn bernoulli(plan: &FramePlan, seed: u64, p: f64, slots: u64) -> Result<TrafficTrace> {
        TrafficTrace::build(plan, CounterRng::traffic(seed), p, slots)
    }

    /// Compiles the slotted-ALOHA transmission decisions of `seed`'s MAC
    /// stream over `slots` slots of the plan's node set: bit `v` of slot `t`
    /// is the Bernoulli(`p`) MAC draw of node `v` at `t`. Replayed through
    /// [`KernelMac::AlohaTrace`], the bitmap reproduces inline
    /// [`KernelMac::Aloha`] runs bit for bit — MAC draws are pure functions of
    /// `(seed, node, slot)`, so baking *all* of them (a superset of what a run
    /// consumes, since only backlogged candidates draw inline) changes
    /// nothing. Shares the batched block build of [`TrafficTrace::bernoulli`],
    /// on the MAC stream instead of the traffic stream.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidKernelConfig`] for a probability outside
    /// `[0, 1]` or a trace exceeding the size cap.
    pub fn aloha_decisions(
        plan: &FramePlan,
        seed: u64,
        p: f64,
        slots: u64,
    ) -> Result<TrafficTrace> {
        TrafficTrace::build(plan, CounterRng::mac(seed), p, slots)
    }

    /// The shared block build behind [`TrafficTrace::bernoulli`] and
    /// [`TrafficTrace::aloha_decisions`]: all Bernoulli(`p`) draws of `rng`
    /// over the plan's node set, compiled into slot-major bitmaps.
    fn build(plan: &FramePlan, rng: CounterRng, p: f64, slots: u64) -> Result<TrafficTrace> {
        let _span = crate::telemetry::span(crate::telemetry::Stage::TraceCompile);
        crate::telemetry::telemetry().count(crate::telemetry::Counter::TraceCompilations, 1);
        if !(0.0..=1.0).contains(&p) {
            return Err(EngineError::InvalidKernelConfig(
                "bernoulli probability must be in [0, 1]".into(),
            ));
        }
        let n = plan.num_nodes();
        let words = n.div_ceil(64);
        if words as u64 * slots > TRACE_WORD_LIMIT {
            return Err(EngineError::InvalidKernelConfig(format!(
                "traffic trace of {n} nodes x {slots} slots exceeds the size cap"
            )));
        }
        if slots == 0 || n == 0 {
            return Ok(TrafficTrace {
                nodes: n,
                slots,
                words,
                bits: vec![0u64; words * slots as usize],
                counts: vec![0u32; slots as usize],
            });
        }
        let orig = plan.original_ids();

        // Streamed tile build, parallel over slot blocks: one slot block is
        // 64 consecutive slots — a contiguous row band of the slot-major
        // bitmap — so the bands chunk across worker threads directly. Within
        // a band, each 64-node tile is drawn node by node with
        // `bernoulli_block` (one hoisted key + one integer threshold per 64
        // draws) and bit-transposed into place; peak memory is the output
        // bitmap plus one 512-byte tile per thread.
        let col_words = (slots as usize).div_ceil(64);
        let block_words = 64 * words;
        let mut bits = vec![0u64; words * slots as usize];
        let mut bands: Vec<&mut [u64]> = bits.chunks_mut(block_words).collect();
        let min_parallel_bands = TRACE_PARALLEL_MIN_WORDS.div_ceil(block_words).max(2);
        fill_chunks_min(&mut bands, min_parallel_bands, |offset, chunk| {
            let mut tile = [0u64; 64];
            for (j, band) in chunk.iter_mut().enumerate() {
                let slot0 = (offset + j) as u64 * 64;
                let band_slots = (slots - slot0).min(64) as usize;
                for bi in 0..words {
                    for (i, cell) in tile.iter_mut().enumerate() {
                        let v = bi * 64 + i;
                        *cell = if v < n {
                            rng.bernoulli_block(p, u64::from(orig[v]), slot0, band_slots)
                        } else {
                            0
                        };
                    }
                    transpose64(&mut tile);
                    for (k, &cell) in tile.iter().enumerate().take(band_slots) {
                        band[k * words + bi] = cell;
                    }
                }
            }
        });
        debug_assert_eq!(bands.len(), col_words);
        drop(bands);
        let counts: Vec<u32> = (0..slots as usize)
            .map(|t| {
                bits[t * words..(t + 1) * words]
                    .iter()
                    .map(|w| w.count_ones())
                    .sum()
            })
            .collect();
        Ok(TrafficTrace {
            nodes: n,
            slots,
            words,
            bits,
            counts,
        })
    }

    /// Number of nodes the trace covers.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of slots the trace covers.
    pub fn num_slots(&self) -> u64 {
        self.slots
    }

    /// Total packets generated across the whole trace.
    pub fn total_generated(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// How many nodes generate a packet at slot `t`.
    #[inline]
    fn count_at(&self, t: u64) -> u32 {
        self.counts[t as usize]
    }

    /// The bitmap words of slot `t`.
    #[inline]
    fn words_at(&self, t: u64) -> &[u64] {
        let base = t as usize * self.words;
        &self.bits[base..base + self.words]
    }

    /// The indicator of (relabelled) node `v` at slot `t`.
    #[inline]
    fn bit_at(&self, t: u64, v: usize) -> bool {
        self.bits[t as usize * self.words + v / 64] >> (v % 64) & 1 == 1
    }
}

/// The per-node implicit-queue state of a deterministic periodic run: a queue
/// is fully described by how many packets the node has removed (the head
/// packet of `v` was generated at `phase(v) + popped[v] · period`) plus the
/// current head packet's transmission attempts.
struct Queues<'a> {
    popped: Vec<u64>,
    attempts: Vec<u32>,
    /// Network-wide queued-packet count, for the O(1) empty-slot skip.
    queued_total: u64,
    traffic_period: u64,
    max_retries: u32,
    /// Original node ids (phase source) when the traffic is staggered; `None`
    /// for phase-aligned traffic (every phase is zero).
    staggered_ids: Option<&'a [u32]>,
}

impl Queues<'_> {
    /// The generation phase of relabelled node `v`.
    #[inline]
    fn phase(&self, v: usize) -> u64 {
        match self.staggered_ids {
            Some(orig) => u64::from(orig[v]) % self.traffic_period,
            None => 0,
        }
    }

    /// Packets generated for relabelled node `v` in slots `0..=t`.
    #[inline]
    fn generated(&self, v: usize, t: u64) -> u64 {
        let phase = self.phase(v);
        if t >= phase {
            (t - phase) / self.traffic_period + 1
        } else {
            0
        }
    }

    /// Applies one transmission outcome — delivery, retry or drop — to node
    /// `v`'s queue and the run counters. The single settlement implementation
    /// of the deterministic loop, shared by its resolve, memo-replay and
    /// conflict-free paths so they cannot drift ([`ExplicitQueues::settle`] is
    /// its counterpart for the general loop's explicit queues).
    #[inline]
    fn settle(&mut self, counts: &mut KernelCounts, v: usize, decoded: u32, degree: u32, t: u64) {
        counts.receptions += u64::from(decoded);
        counts.collisions += u64::from(degree - decoded);
        self.attempts[v] += 1;
        if decoded == degree {
            counts.packets_delivered += 1;
            counts.total_latency += t - (self.phase(v) + self.popped[v] * self.traffic_period);
            self.popped[v] += 1;
            self.attempts[v] = 0;
            self.queued_total -= 1;
        } else if self.attempts[v] > self.max_retries {
            counts.packets_dropped += 1;
            self.popped[v] += 1;
            self.attempts[v] = 0;
            self.queued_total -= 1;
        }
    }
}

/// The per-node state of the general loop: explicit queues of generation
/// times (any traffic pattern), head-packet attempt counters, the
/// network-wide backlog count, and a backlog bitmask over relabelled ids so
/// the per-slot candidate scan reads a handful of words instead of one queue
/// header per candidate.
struct ExplicitQueues {
    queues: Vec<VecDeque<u64>>,
    attempts: Vec<u32>,
    /// Bit `v` set iff `queues[v]` is nonempty. Slot candidates are a
    /// contiguous relabelled-id range, so the slot's backlogged candidates are
    /// the set bits of a word range of this mask.
    backlog: Vec<u64>,
    queued_total: u64,
    max_retries: u32,
}

impl ExplicitQueues {
    fn new(n: usize, max_retries: u32) -> Self {
        ExplicitQueues {
            queues: vec![VecDeque::new(); n],
            attempts: vec![0u32; n],
            backlog: vec![0u64; n.div_ceil(64)],
            queued_total: 0,
            max_retries,
        }
    }

    /// Enqueues one packet generated at `t` for node `v`, maintaining the
    /// backlog mask and count.
    #[inline]
    fn push(&mut self, v: usize, t: u64) {
        self.queues[v].push_back(t);
        self.backlog[v / 64] |= 1u64 << (v % 64);
        self.queued_total += 1;
    }

    /// Applies one transmission outcome — delivery, retry or drop — to node
    /// `v`'s queue and the run counters. The single settlement implementation
    /// of the general loop, shared by its resolve and conflict-free paths so
    /// they cannot drift (the counterpart of [`Queues::settle`] for implicit
    /// periodic queues).
    #[inline]
    fn settle(&mut self, counts: &mut KernelCounts, v: usize, decoded: u32, degree: u32, t: u64) {
        counts.receptions += u64::from(decoded);
        counts.collisions += u64::from(degree - decoded);
        self.attempts[v] += 1;
        let popped = if decoded == degree {
            let generated_at = self.queues[v]
                .pop_front()
                .expect("transmitters are backlogged");
            counts.packets_delivered += 1;
            counts.total_latency += t - generated_at;
            true
        } else if self.attempts[v] > self.max_retries {
            self.queues[v].pop_front();
            counts.packets_dropped += 1;
            true
        } else {
            false
        };
        if popped {
            self.attempts[v] = 0;
            self.queued_total -= 1;
            if self.queues[v].is_empty() {
                self.backlog[v / 64] &= !(1u64 << (v % 64));
            }
        }
    }
}

/// The reusable per-slot bitset state of the interference passes, shared by the
/// deterministic and the general (stochastic) kernel loops so the two cannot
/// drift on collision semantics.
struct SlotBuffers {
    tx_mask: Vec<u64>,
    /// ≥ 1 in-range transmitter.
    once: Vec<u64>,
    /// ≥ 2 in-range transmitters.
    twice: Vec<u64>,
    /// transmitting ∪ (≥ 2 in range).
    lost: Vec<u64>,
    /// Bitset words touched this slot (cleared without O(n) sweeps).
    touched: Vec<u32>,
    /// `outcomes[i]`: how many of transmitter `tx_list[i]`'s neighbours decoded
    /// it, filled by [`SlotBuffers::resolve`].
    outcomes: Vec<u32>,
}

impl SlotBuffers {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        SlotBuffers {
            tx_mask: vec![0u64; words],
            once: vec![0u64; words],
            twice: vec![0u64; words],
            lost: vec![0u64; words],
            touched: Vec::with_capacity(words),
            outcomes: vec![0u32; n],
        }
    }

    /// Resolves one slot's interference for the given transmitter list: fills
    /// `outcomes[..tx_list.len()]` with per-transmitter decode counts and
    /// returns the number of receiving nodes (≥ 1 in-range transmitter, not
    /// transmitting). All buffers are cleared again before returning.
    fn resolve(&mut self, plan: &FramePlan, tx_list: &[u32]) -> u64 {
        // Pass 1: build the transmit mask.
        for &v in tx_list {
            self.tx_mask[(v / 64) as usize] |= 1u64 << (v % 64);
        }

        // Pass 2: in-range-transmitter counting, saturated at two, one bitset
        // word per word-grouped neighbour entry. Bits of `mask` already in
        // `once` have now been heard twice; duplicate neighbour ids occupy
        // separate entries, so they saturate exactly like repeated unit
        // increments.
        for &v in tx_list {
            let (entry_words, entry_bits) = plan.mask_entries(v as usize);
            for (&w, &mask) in entry_words.iter().zip(entry_bits) {
                let w = w as usize;
                let cur = self.once[w];
                if cur == 0 {
                    self.touched.push(w as u32);
                }
                self.twice[w] |= cur & mask;
                self.once[w] = cur | mask;
            }
        }
        // A neighbour loses the message iff it is itself transmitting or hears
        // ≥ 2 transmitters; every word the outcome pass reads carries at least
        // one once-bit, so materializing the union over the touched words gives
        // that pass a single load per edge.
        for &w in &self.touched {
            let w = w as usize;
            self.lost[w] = self.tx_mask[w] | self.twice[w];
        }

        // Pass 3: per-transmitter outcomes (collision mask reads), in parallel
        // for large transmitter sets.
        let tx_count = tx_list.len();
        {
            let lost = &self.lost;
            fill_chunks(&mut self.outcomes[..tx_count], |offset, chunk| {
                for (i, out) in chunk.iter_mut().enumerate() {
                    let v = tx_list[offset + i] as usize;
                    let (entry_words, entry_bits) = plan.mask_entries(v);
                    let mut decoded = 0u32;
                    for (&w, &mask) in entry_words.iter().zip(entry_bits) {
                        decoded += (mask & !lost[w as usize]).count_ones();
                    }
                    *out = decoded;
                }
            });
        }

        // Radio-state tally: receivers as popcounts over the touched words.
        let mut rx = 0u64;
        for &w in &self.touched {
            let w = w as usize;
            rx += u64::from((self.once[w] & !self.tx_mask[w]).count_ones());
        }

        // Clear only what this slot touched.
        for &w in &self.touched {
            let w = w as usize;
            self.once[w] = 0;
            self.twice[w] = 0;
        }
        self.touched.clear();
        for &v in tx_list {
            // A transmit-mask word only ever holds this slot's transmitters, so
            // zeroing the whole word is safe.
            self.tx_mask[(v / 64) as usize] = 0;
        }
        rx
    }
}

/// Runs a full simulation by replaying the compiled frame plan.
///
/// Produces counters identical to the reference simulator's for the same
/// workload — including stochastic ones, thanks to the counter-based RNG —
/// (verified by the cross-crate `sim_parity` property suite).
///
/// # Errors
///
/// Returns [`EngineError::InvalidKernelConfig`] for a zero traffic period, a
/// probability outside `[0, 1]`, or a traffic trace whose node or slot counts
/// do not cover the run.
pub fn run_frames(plan: &FramePlan, config: &KernelConfig) -> Result<KernelCounts> {
    run_frames_impl(plan, config, true)
}

/// [`run_frames`] with the closed-form analytic replay disabled: clean
/// scheduled runs take the slot-loop paths they took before the analytic
/// dispatch existed. The escape hatch exists for measurement (the
/// `--bench-replay` baseline times analytic against loop execution) and for
/// the parity suites that pin the two bit-identical; results are always
/// identical to [`run_frames`].
///
/// # Errors
///
/// As for [`run_frames`].
pub fn run_frames_loop(plan: &FramePlan, config: &KernelConfig) -> Result<KernelCounts> {
    run_frames_impl(plan, config, false)
}

/// Bumps the dispatch-path counter of one kernel run — every
/// [`run_frames_impl`] call and every lane-kernel seed passes through exactly
/// one of these, so the six dispatch counters sum to the number of simulated
/// runs (a no-op while telemetry is disabled).
#[inline]
fn note_dispatch(counter: crate::telemetry::Counter, runs: u64) {
    crate::telemetry::telemetry().count(counter, runs);
}

fn run_frames_impl(
    plan: &FramePlan,
    config: &KernelConfig,
    allow_analytic: bool,
) -> Result<KernelCounts> {
    use crate::telemetry::Counter;
    let n = plan.num_nodes();
    match &config.traffic {
        KernelTraffic::Periodic { period: 0 } | KernelTraffic::Staggered { period: 0 } => {
            return Err(EngineError::InvalidKernelConfig(
                "periodic traffic period must be positive".into(),
            ));
        }
        KernelTraffic::Bernoulli { p } if !(0.0..=1.0).contains(p) => {
            return Err(EngineError::InvalidKernelConfig(
                "bernoulli probability must be in [0, 1]".into(),
            ));
        }
        KernelTraffic::Trace(trace)
            if trace.num_nodes() != n || trace.num_slots() < config.slots =>
        {
            return Err(EngineError::InvalidKernelConfig(format!(
                "traffic trace covers {} nodes x {} slots, run needs {} x {}",
                trace.num_nodes(),
                trace.num_slots(),
                n,
                config.slots
            )));
        }
        _ => {}
    }
    match &config.mac {
        KernelMac::Aloha { p } if !(0.0..=1.0).contains(p) => {
            return Err(EngineError::InvalidKernelConfig(
                "aloha probability must be in [0, 1]".into(),
            ));
        }
        KernelMac::AlohaTrace(trace)
            if trace.num_nodes() != n || trace.num_slots() < config.slots =>
        {
            return Err(EngineError::InvalidKernelConfig(format!(
                "MAC decision trace covers {} nodes x {} slots, run needs {} x {}",
                trace.num_nodes(),
                trace.num_slots(),
                n,
                config.slots
            )));
        }
        _ => {}
    }

    if matches!(config.traffic, KernelTraffic::None) {
        // Without traffic nothing ever transmits: every node idles every slot.
        // Closed-form, so it counts as an analytic dispatch.
        note_dispatch(Counter::DispatchAnalytic, 1);
        return Ok(KernelCounts {
            idle_slots: n as u64 * config.slots,
            ..KernelCounts::default()
        });
    }

    // Closed-form analytic replay: on a conflict-free plan under scheduled
    // access every transmission delivers, so the whole run is a per-node
    // arithmetic-progression service problem — no slot loop needed (see
    // `run_analytic_periodic` / `run_analytic_trace`). Partially conflicted
    // plans with a small enough conflicted minority replay hybrid: clean slot
    // classes keep the closed form, only the conflicted classes loop (see
    // `run_analytic_partial`).
    if allow_analytic && matches!(config.mac, KernelMac::Scheduled) {
        if plan.conflict_free() {
            match &config.traffic {
                KernelTraffic::Periodic { period } => {
                    note_dispatch(Counter::DispatchAnalytic, 1);
                    return run_analytic_periodic(plan, config, *period, false);
                }
                KernelTraffic::Staggered { period } => {
                    note_dispatch(Counter::DispatchAnalytic, 1);
                    return run_analytic_periodic(plan, config, *period, true);
                }
                KernelTraffic::Trace(trace) => {
                    note_dispatch(Counter::DispatchAnalytic, 1);
                    return run_analytic_trace(plan, config, trace);
                }
                KernelTraffic::Bernoulli { p }
                    if n as u64 * config.slots >= AUTO_TRACE_MIN_DRAWS
                        && n.div_ceil(64) as u64 * config.slots <= TRACE_WORD_LIMIT =>
                {
                    // The same auto-trace conversion the general loop applies:
                    // compile the draws once, then replay the trace analytically.
                    note_dispatch(Counter::DispatchAnalytic, 1);
                    let trace = TrafficTrace::bernoulli(plan, config.seed, *p, config.slots)?;
                    return run_analytic_trace(plan, config, &trace);
                }
                _ => {}
            }
        } else if plan.conflicted_slots() * ANALYTIC_CONFLICT_DENOM <= plan.period() {
            match &config.traffic {
                KernelTraffic::Periodic { period } => {
                    note_dispatch(Counter::DispatchPartialAnalytic, 1);
                    return run_analytic_partial(plan, config, *period, false);
                }
                KernelTraffic::Staggered { period } => {
                    note_dispatch(Counter::DispatchPartialAnalytic, 1);
                    return run_analytic_partial(plan, config, *period, true);
                }
                _ => {}
            }
        }
    }

    // Slot-loop dispatch: conflict-free plans never run interference passes
    // (the loop's clean shortcut), everything else pays the bitset loop.
    note_dispatch(
        if plan.conflict_free() {
            Counter::DispatchConflictFree
        } else {
            Counter::DispatchGeneralLoop
        },
        1,
    );
    match (&config.traffic, &config.mac) {
        (KernelTraffic::Periodic { period }, KernelMac::Scheduled) => {
            run_deterministic(plan, config, *period, false, FULL_BURST_MEMO_BYTE_BUDGET)
        }
        (KernelTraffic::Staggered { period }, KernelMac::Scheduled) => {
            run_deterministic(plan, config, *period, true, FULL_BURST_MEMO_BYTE_BUDGET)
        }
        _ => run_general(plan, config),
    }
}

/// The per-node slot class of every relabelled node: `slot_of[v]` is the frame
/// slot whose candidate range contains `v`, or `u32::MAX` for silent nodes
/// (out-of-period assignments that never transmit).
fn slot_classes(plan: &FramePlan) -> Vec<u32> {
    let mut slot_of = vec![u32::MAX; plan.num_nodes()];
    for slot in 0..plan.period() {
        for v in plan.slot_candidates(slot) {
            slot_of[v] = slot as u32;
        }
    }
    slot_of
}

/// The first service opportunity of slot class `s` at or after slot `t` in a
/// frame of period `m`: the smallest `t' ≥ t` with `t' ≡ s (mod m)`.
#[inline]
fn first_service_ge(t: u64, s: u64, m: u64) -> u64 {
    t + (s + m - t % m) % m
}

/// Closed-form per-node accounting of one clean-plan service chain: arrivals
/// `a_k` are served FIFO at `d_k = max(first_service_ge(a_k), d_{k-1} + m)`
/// (one service per frame period; generation precedes the MAC within a slot,
/// so an arrival can be served in its own slot). Every service delivers —
/// the plan is conflict-free — so iterating services instead of slots costs
/// `O(deliveries)`: the loop below walks arrivals lazily and stops at the
/// first service past the horizon. Returns `(delivered, total_latency)`.
#[inline]
fn settle_clean_chain(
    mut arrivals: impl Iterator<Item = u64>,
    s: u64,
    m: u64,
    slots: u64,
) -> (u64, u64) {
    let mut next_free = 0u64;
    let mut delivered = 0u64;
    let mut latency = 0u64;
    for a in arrivals.by_ref() {
        let d = first_service_ge(a, s, m).max(next_free);
        if d >= slots {
            break;
        }
        delivered += 1;
        latency += d - a;
        next_free = d + m;
    }
    (delivered, latency)
}

/// Analytic replay of periodic (aligned or staggered) traffic on a clean plan
/// under scheduled access: no slot loop, no queues, no bitsets. Aligned
/// traffic is computed once per *slot class* (every node of a class shares
/// phase 0, the same service chain and the same delivery schedule) and scaled
/// by the class size and degree sum; staggered traffic walks nodes, each an
/// `O(deliveries)` chain. Counter parity with the loop kernels is pinned by
/// the `sim_parity` suite and the in-measure assertion of `--bench-replay`.
fn run_analytic_periodic(
    plan: &FramePlan,
    config: &KernelConfig,
    traffic_period: u64,
    staggered: bool,
) -> Result<KernelCounts> {
    let n = plan.num_nodes();
    let slots = config.slots;
    let mut counts = KernelCounts::default();
    if slots == 0 {
        return Ok(counts);
    }
    let m = plan.period() as u64;

    if staggered {
        let slot_of = slot_classes(plan);
        for (v, &ov) in plan.original_ids().iter().enumerate() {
            let phase = u64::from(ov) % traffic_period;
            if slots <= phase {
                continue;
            }
            let generated = (slots - 1 - phase) / traffic_period + 1;
            counts.packets_generated += generated;
            if slot_of[v] == u32::MAX {
                continue; // silent: arrivals only accumulate pending
            }
            let arrivals = (0..generated).map(|k| phase + k * traffic_period);
            let (delivered, latency) =
                settle_clean_chain(arrivals, u64::from(slot_of[v]), m, slots);
            let degree = u64::from(plan.degree(v));
            counts.packets_delivered += delivered;
            counts.total_latency += latency;
            counts.transmissions += delivered;
            counts.receptions += delivered * degree;
            counts.tx_slots += delivered;
            counts.rx_slots += delivered * degree;
        }
    } else {
        let generated = (slots - 1) / traffic_period + 1;
        counts.packets_generated = generated * n as u64;
        for slot in 0..plan.period() {
            let class = plan.slot_candidates(slot);
            if class.is_empty() {
                continue;
            }
            let degree_sum: u64 = class.clone().map(|v| u64::from(plan.degree(v))).sum();
            let arrivals = (0..generated).map(|k| k * traffic_period);
            let (delivered, latency) = settle_clean_chain(arrivals, slot as u64, m, slots);
            let size = class.len() as u64;
            counts.packets_delivered += delivered * size;
            counts.total_latency += latency * size;
            counts.transmissions += delivered * size;
            counts.receptions += delivered * degree_sum;
            counts.tx_slots += delivered * size;
            counts.rx_slots += delivered * degree_sum;
        }
    }

    counts.packets_pending = counts.packets_generated - counts.packets_delivered;
    counts.idle_slots = n as u64 * slots - counts.tx_slots - counts.rx_slots;
    Ok(counts)
}

/// Analytic replay of compiled-trace traffic on a clean plan under scheduled
/// access: one slot-major pass over the arrival bitmaps, with per-node
/// `next_free` service cursors instead of queues — each arrival settles in
/// O(1) via the same `d = max(first_service_ge(a), next_free)` recurrence as
/// [`run_analytic_periodic`], and slots with no arrivals cost one counter
/// read. (The trace may cover more slots than the run; extra slots are
/// ignored, exactly as in the general loop.)
fn run_analytic_trace(
    plan: &FramePlan,
    config: &KernelConfig,
    trace: &TrafficTrace,
) -> Result<KernelCounts> {
    let n = plan.num_nodes();
    let slots = config.slots;
    let mut counts = KernelCounts::default();
    if slots == 0 {
        return Ok(counts);
    }
    let m = plan.period() as u64;
    let slot_of = slot_classes(plan);
    let mut next_free = vec![0u64; n];
    for t in 0..slots {
        if trace.count_at(t) == 0 {
            continue;
        }
        counts.packets_generated += u64::from(trace.count_at(t));
        for (w, &word) in trace.words_at(t).iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let v = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let s = slot_of[v];
                if s == u32::MAX {
                    continue; // silent node: the arrival only adds pending
                }
                let d = first_service_ge(t, u64::from(s), m).max(next_free[v]);
                if d >= slots {
                    continue; // served past the horizon: stays pending
                }
                let degree = u64::from(plan.degree(v));
                counts.packets_delivered += 1;
                counts.total_latency += d - t;
                counts.transmissions += 1;
                counts.receptions += degree;
                counts.tx_slots += 1;
                counts.rx_slots += degree;
                next_free[v] = d + m;
            }
        }
    }
    counts.packets_pending = counts.packets_generated - counts.packets_delivered;
    counts.idle_slots = n as u64 * slots - counts.tx_slots - counts.rx_slots;
    Ok(counts)
}

/// Hybrid analytic replay of periodic (aligned or staggered) traffic on a
/// *partially* conflicted plan under scheduled access.
///
/// Under scheduled access, slot classes are dynamically decoupled: class `s`
/// transmits only at slots `t ≡ s (mod m)`, its transmitters are exactly its
/// own backlogged candidates, and interference at those slots resolves among
/// them — no other class's queue state can influence an outcome. So the run
/// splits exactly: clean classes (their slots carry no conflicts, every
/// transmission delivers) keep the closed-form service chains of
/// [`run_analytic_periodic`], while each conflicted class replays a *narrowed*
/// slot loop visiting only its own service slots — `conflicted_slots / m` of
/// the run instead of all of it — with the same resolve/settle/memo machinery
/// as [`run_deterministic`]. Idle slots and pending packets close by
/// conservation, exactly as the loop computes them. Bit-exact parity with
/// [`run_frames_loop`] is pinned by the `sim_parity` suite and asserted inside
/// every timed `--bench-replay` sample.
fn run_analytic_partial(
    plan: &FramePlan,
    config: &KernelConfig,
    traffic_period: u64,
    staggered: bool,
) -> Result<KernelCounts> {
    let n = plan.num_nodes();
    let slots = config.slots;
    let mut counts = KernelCounts::default();
    if slots == 0 {
        return Ok(counts);
    }
    let m = plan.period() as u64;

    // Clean classes: closed-form service chains, as in the fully-clean
    // analytic replay, restricted to classes whose slot is unconflicted.
    if staggered {
        let slot_of = slot_classes(plan);
        for (v, &ov) in plan.original_ids().iter().enumerate() {
            let s = slot_of[v];
            if s == u32::MAX || plan.slot_conflicted(s as usize) {
                continue; // silent (pending only) or handled by the narrowed loop
            }
            let phase = u64::from(ov) % traffic_period;
            if slots <= phase {
                continue;
            }
            let generated = (slots - 1 - phase) / traffic_period + 1;
            let arrivals = (0..generated).map(|k| phase + k * traffic_period);
            let (delivered, latency) = settle_clean_chain(arrivals, u64::from(s), m, slots);
            let degree = u64::from(plan.degree(v));
            counts.packets_delivered += delivered;
            counts.total_latency += latency;
            counts.transmissions += delivered;
            counts.receptions += delivered * degree;
            counts.tx_slots += delivered;
            counts.rx_slots += delivered * degree;
        }
    } else {
        let generated = (slots - 1) / traffic_period + 1;
        for slot in 0..plan.period() {
            if plan.slot_conflicted(slot) {
                continue;
            }
            let class = plan.slot_candidates(slot);
            if class.is_empty() {
                continue;
            }
            let degree_sum: u64 = class.clone().map(|v| u64::from(plan.degree(v))).sum();
            let arrivals = (0..generated).map(|k| k * traffic_period);
            let (delivered, latency) = settle_clean_chain(arrivals, slot as u64, m, slots);
            let size = class.len() as u64;
            counts.packets_delivered += delivered * size;
            counts.total_latency += latency * size;
            counts.transmissions += delivered * size;
            counts.receptions += delivered * degree_sum;
            counts.tx_slots += delivered * size;
            counts.rx_slots += delivered * degree_sum;
        }
    }

    // Conflicted classes: the narrowed slot loop. Queue state is indexed by
    // relabelled id but only conflicted-class entries are ever touched; the
    // full-burst memo and interference buffers are the loop kernel's own.
    let mut buffers = SlotBuffers::new(n);
    let mut tx_list: Vec<u32> = Vec::with_capacity(n);
    let mut queues = Queues {
        popped: vec![0u64; n],
        attempts: vec![0u32; n],
        queued_total: 0, // unused: the narrowed loop never skips on it
        traffic_period,
        max_retries: config.max_retries,
        staggered_ids: staggered.then(|| plan.original_ids()),
    };
    let mut full_burst_memo = FullBurstMemo::new(FULL_BURST_MEMO_BYTE_BUDGET);
    for slot in 0..plan.period() {
        if !plan.slot_conflicted(slot) {
            continue;
        }
        let class = plan.slot_candidates(slot);
        if class.is_empty() {
            continue;
        }
        let mut t = slot as u64;
        while t < slots {
            let aligned_generated = t / traffic_period + 1;
            tx_list.clear();
            for v in class.clone() {
                let generated = if staggered {
                    queues.generated(v, t)
                } else {
                    aligned_generated
                };
                if generated > queues.popped[v] {
                    tx_list.push(v as u32);
                }
            }
            if !tx_list.is_empty() {
                let tx_count = tx_list.len();
                // `settle` decrements the network backlog on every delivery
                // or drop; the narrowed loop never reads it (no empty-slot
                // skip), so top it up per burst to keep the counter unsigned.
                queues.queued_total += tx_count as u64;
                let full_burst = tx_count == class.len();
                if full_burst {
                    if let Some((decoded, rx)) = full_burst_memo.get(plan, slot) {
                        counts.transmissions += tx_count as u64;
                        for (&v, &decoded) in tx_list.iter().zip(decoded.iter()) {
                            let v = v as usize;
                            queues.settle(&mut counts, v, decoded, plan.degree(v), t);
                        }
                        counts.tx_slots += tx_count as u64;
                        counts.rx_slots += *rx;
                        t += m;
                        continue;
                    }
                }
                let rx = buffers.resolve(plan, &tx_list);
                counts.transmissions += tx_count as u64;
                for (&v, &decoded) in tx_list.iter().zip(&buffers.outcomes[..tx_count]) {
                    let v = v as usize;
                    queues.settle(&mut counts, v, decoded, plan.degree(v), t);
                }
                counts.tx_slots += tx_count as u64;
                counts.rx_slots += rx;
                if full_burst {
                    full_burst_memo.insert(plan, slot, &buffers.outcomes[..tx_count], rx);
                }
            }
            t += m;
        }
    }

    // Global generation closed form, then pending and idle by conservation —
    // the same identities the loop kernels close with.
    if staggered {
        for id in 0..n as u64 {
            let phase = id % traffic_period;
            if slots > phase {
                counts.packets_generated += (slots - 1 - phase) / traffic_period + 1;
            }
        }
    } else {
        counts.packets_generated = ((slots - 1) / traffic_period + 1) * n as u64;
    }
    counts.packets_pending =
        counts.packets_generated - counts.packets_delivered - counts.packets_dropped;
    counts.idle_slots = n as u64 * slots - counts.tx_slots - counts.rx_slots;
    Ok(counts)
}

/// The deterministic fast path: periodic (aligned or staggered) traffic under
/// scheduled access, with implicit arithmetic-progression queues, the O(1)
/// empty-slot skip and the full-burst memo.
fn run_deterministic(
    plan: &FramePlan,
    config: &KernelConfig,
    traffic_period: u64,
    staggered: bool,
    memo_budget: usize,
) -> Result<KernelCounts> {
    let n = plan.num_nodes();
    let mut counts = KernelCounts::default();
    let mut buffers = SlotBuffers::new(n);
    let mut tx_list: Vec<u32> = Vec::with_capacity(n);
    let mut queues = Queues {
        popped: vec![0u64; n],
        attempts: vec![0u32; n],
        queued_total: 0,
        traffic_period,
        max_retries: config.max_retries,
        staggered_ids: staggered.then(|| plan.original_ids()),
    };
    // Full-burst memo: when *every* candidate of a slot transmits, the
    // interference outcome is a pure function of the slot, so the first such
    // occurrence's per-transmitter decode counts and rx tally are recorded and
    // replayed on later full bursts in O(candidates) instead of O(edges). With
    // periodic traffic full bursts are the steady state, so this is the common
    // path; staggered phases only shift when each node reaches it. The memo is
    // content-hash keyed and byte-budgeted (see [`FullBurstMemo`]), so huge
    // frame periods no longer pin O(period + n) memory per run.
    let mut full_burst_memo = FullBurstMemo::new(memo_budget);

    let frame_period = plan.period() as u64;
    for t in 0..config.slots {
        // Number of nodes generating a packet in this slot (generation precedes
        // the MAC decision within a slot). Original ids are a permutation of
        // 0..n, so the staggered residue-class count has a closed form.
        let newly = if staggered {
            let r = t % traffic_period;
            if r < n as u64 {
                (n as u64 - 1 - r) / traffic_period + 1
            } else {
                0
            }
        } else if t.is_multiple_of(traffic_period) {
            n as u64
        } else {
            0
        };
        queues.queued_total += newly;
        // When the whole network's queues are empty the slot is skipped in
        // O(1) — with periodic traffic this covers the drained stretch of
        // every generation cycle.
        if queues.queued_total == 0 {
            counts.idle_slots += n as u64;
            continue;
        }
        let slot = (t % frame_period) as usize;

        // Backlogged candidates become transmitters. Candidates are a
        // contiguous relabelled-id range, so this is a sequential scan of
        // `popped`. Phase-aligned traffic shares one generation count across
        // the slot; staggered phases need the per-node count.
        let aligned_generated = t / traffic_period + 1;
        tx_list.clear();
        for v in plan.slot_candidates(slot) {
            let generated = if staggered {
                queues.generated(v, t)
            } else {
                aligned_generated
            };
            if generated > queues.popped[v] {
                tx_list.push(v as u32);
            }
        }
        if tx_list.is_empty() {
            counts.idle_slots += n as u64;
            continue;
        }
        let tx_count = tx_list.len();

        // Clean-slot shortcut: on a slot with no conflicts (per the plan's
        // conflict bitmask) outcomes are closed-form — no bitset passes.
        // Partially conflicting plans pay the passes only on their conflicted
        // slots.
        if !plan.slot_conflicted(slot) {
            settle_clean_slot(plan, &mut counts, &tx_list, n, t, |counts, v, degree, t| {
                queues.settle(counts, v, degree, degree, t)
            });
            continue;
        }
        let full_burst = tx_count == plan.slot_candidates(slot).len();

        if full_burst {
            if let Some((decoded, rx)) = full_burst_memo.get(plan, slot) {
                // Memoized fast path: bitsets untouched, queues updated from
                // the recorded outcomes.
                counts.transmissions += tx_count as u64;
                for (&v, &decoded) in tx_list.iter().zip(decoded.iter()) {
                    let v = v as usize;
                    queues.settle(&mut counts, v, decoded, plan.degree(v), t);
                }
                counts.tx_slots += tx_count as u64;
                counts.rx_slots += *rx;
                counts.idle_slots += n as u64 - tx_count as u64 - *rx;
                continue;
            }
        }

        // General path: full interference resolution.
        let rx = buffers.resolve(plan, &tx_list);
        counts.transmissions += tx_count as u64;
        for (&v, &decoded) in tx_list.iter().zip(&buffers.outcomes[..tx_count]) {
            let v = v as usize;
            queues.settle(&mut counts, v, decoded, plan.degree(v), t);
        }
        counts.tx_slots += tx_count as u64;
        counts.rx_slots += rx;
        counts.idle_slots += n as u64 - tx_count as u64 - rx;

        // Record the outcome of a full burst for replay on its next
        // occurrence (skipped silently once the byte budget is reached).
        if full_burst {
            full_burst_memo.insert(plan, slot, &buffers.outcomes[..tx_count], rx);
        }
    }

    if config.slots > 0 {
        // Per-node closed-form generation totals (phases are original ids,
        // a permutation of 0..n).
        if staggered {
            for id in 0..n as u64 {
                let phase = id % traffic_period;
                if config.slots > phase {
                    counts.packets_generated += (config.slots - 1 - phase) / traffic_period + 1;
                }
            }
        } else {
            counts.packets_generated = ((config.slots - 1) / traffic_period + 1) * n as u64;
        }
        counts.packets_pending =
            counts.packets_generated - counts.packets_delivered - counts.packets_dropped;
    }
    Ok(counts)
}

/// The per-residue generation bitmaps of staggered traffic: node `v` (original
/// id) generates at slots `t ≡ orig(v) (mod period)`, so one bitmap per
/// residue class lets the general loop enqueue exactly the generating nodes
/// instead of walking all of them every slot.
struct StaggerResidues {
    words: usize,
    /// Residue-major bitmaps over relabelled ids: bit `v` of residue `r` lives
    /// in `bits[r * words + v / 64]`.
    bits: Vec<u64>,
    /// Per-residue generator counts.
    counts: Vec<u32>,
}

impl StaggerResidues {
    /// Builds the residue bitmaps when the period is small enough to be worth
    /// materializing; longer periods return `None` (per-node walk instead).
    fn build(plan: &FramePlan, period: u64) -> Option<StaggerResidues> {
        let n = plan.num_nodes();
        let words = n.div_ceil(64);
        if period == 0 || period * words as u64 > STAGGER_RESIDUE_WORD_LIMIT {
            return None;
        }
        let mut bits = vec![0u64; period as usize * words];
        let mut counts = vec![0u32; period as usize];
        for (v, &ov) in plan.original_ids().iter().enumerate() {
            let r = (u64::from(ov) % period) as usize;
            bits[r * words + v / 64] |= 1u64 << (v % 64);
            counts[r] += 1;
        }
        Some(StaggerResidues {
            words,
            bits,
            counts,
        })
    }

    #[inline]
    fn words_at(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words..(r + 1) * self.words]
    }
}

/// The general loop: explicit per-node queues of generation times, supporting
/// every traffic model (counter-drawn Bernoulli, compiled traces, periodic)
/// under scheduled or slotted-ALOHA access.
fn run_general(plan: &FramePlan, config: &KernelConfig) -> Result<KernelCounts> {
    let n = plan.num_nodes();
    let orig = plan.original_ids();
    let traffic_rng = CounterRng::traffic(config.seed);
    let mac_rng = CounterRng::mac(config.seed);
    let mut counts = KernelCounts::default();
    let mut buffers = SlotBuffers::new(n);
    let mut tx_list: Vec<u32> = Vec::with_capacity(n);
    let mut state = ExplicitQueues::new(n, config.max_retries);

    // Stop walking every node per slot where the traffic model allows it:
    // inline Bernoulli runs above the size threshold auto-compile an internal
    // block trace (bit-identical by construction, and the batched build is
    // cheaper than the per-slot draws it replaces); staggered runs compile
    // per-residue generation bitmaps.
    let traffic: KernelTraffic = match &config.traffic {
        KernelTraffic::Bernoulli { p }
            if n as u64 * config.slots >= AUTO_TRACE_MIN_DRAWS
                && n.div_ceil(64) as u64 * config.slots <= TRACE_WORD_LIMIT =>
        {
            KernelTraffic::Trace(Arc::new(TrafficTrace::bernoulli(
                plan,
                config.seed,
                *p,
                config.slots,
            )?))
        }
        other => other.clone(),
    };
    let residues = match &traffic {
        KernelTraffic::Staggered { period } => StaggerResidues::build(plan, *period),
        _ => None,
    };

    let frame_period = plan.period() as u64;
    for t in 0..config.slots {
        // Traffic generation.
        match &traffic {
            KernelTraffic::Bernoulli { p } => {
                for (v, &ov) in orig.iter().enumerate() {
                    if traffic_rng.bernoulli(*p, u64::from(ov), t) {
                        state.push(v, t);
                        counts.packets_generated += 1;
                    }
                }
            }
            KernelTraffic::Trace(trace) => {
                if trace.count_at(t) > 0 {
                    for (w, &word) in trace.words_at(t).iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let v = w * 64 + bits.trailing_zeros() as usize;
                            state.queues[v].push_back(t);
                            bits &= bits - 1;
                        }
                        state.backlog[w] |= word;
                    }
                    state.queued_total += u64::from(trace.count_at(t));
                    counts.packets_generated += u64::from(trace.count_at(t));
                }
            }
            KernelTraffic::Periodic { period } => {
                if t.is_multiple_of(*period) {
                    for v in 0..n {
                        state.push(v, t);
                    }
                    counts.packets_generated += n as u64;
                }
            }
            KernelTraffic::Staggered { period } => {
                let r = t % period;
                match &residues {
                    Some(res) if res.counts[r as usize] > 0 => {
                        for (w, &word) in res.words_at(r as usize).iter().enumerate() {
                            let mut bits = word;
                            while bits != 0 {
                                let v = w * 64 + bits.trailing_zeros() as usize;
                                state.queues[v].push_back(t);
                                bits &= bits - 1;
                            }
                            state.backlog[w] |= word;
                        }
                        state.queued_total += u64::from(res.counts[r as usize]);
                        counts.packets_generated += u64::from(res.counts[r as usize]);
                    }
                    Some(_) => {}
                    None => {
                        for (v, &ov) in orig.iter().enumerate() {
                            if u64::from(ov) % period == r {
                                state.push(v, t);
                                counts.packets_generated += 1;
                            }
                        }
                    }
                }
            }
            KernelTraffic::None => {}
        }
        if state.queued_total == 0 {
            counts.idle_slots += n as u64;
            continue;
        }

        // MAC decisions over the slot's backlogged candidates: the candidate
        // range's backlogged members are the set bits of a word range of the
        // backlog mask, so an empty-ish slot costs a few word reads instead of
        // one queue-header read per candidate.
        let slot = (t % frame_period) as usize;
        let range = plan.slot_candidates(slot);
        tx_list.clear();
        if !range.is_empty() {
            let first_word = range.start / 64;
            let last_word = (range.end - 1) / 64;
            for w in first_word..=last_word {
                let mut bits = state.backlog[w];
                if w == first_word {
                    bits &= !0u64 << (range.start % 64);
                }
                let valid = range.end - w * 64;
                if valid < 64 {
                    bits &= (1u64 << valid) - 1;
                }
                while bits != 0 {
                    let v = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let transmit = match &config.mac {
                        KernelMac::Scheduled => true,
                        KernelMac::Aloha { p } => mac_rng.bernoulli(*p, u64::from(orig[v]), t),
                        KernelMac::AlohaTrace(trace) => trace.bit_at(t, v),
                    };
                    if transmit {
                        tx_list.push(v as u32);
                    }
                }
            }
        }
        if tx_list.is_empty() {
            counts.idle_slots += n as u64;
            continue;
        }
        let tx_count = tx_list.len();

        // Clean-slot shortcut (see `run_deterministic`): deliveries and the
        // rx tally are closed-form, no bitset passes needed; only conflicted
        // slots of the plan pay interference resolution.
        if !plan.slot_conflicted(slot) {
            settle_clean_slot(plan, &mut counts, &tx_list, n, t, |counts, v, degree, t| {
                state.settle(counts, v, degree, degree, t)
            });
            continue;
        }

        let rx = buffers.resolve(plan, &tx_list);
        counts.transmissions += tx_count as u64;
        for (&v, &decoded) in tx_list.iter().zip(&buffers.outcomes[..tx_count]) {
            let v = v as usize;
            state.settle(&mut counts, v, decoded, plan.degree(v), t);
        }
        counts.tx_slots += tx_count as u64;
        counts.rx_slots += rx;
        counts.idle_slots += n as u64 - tx_count as u64 - rx;
    }

    counts.packets_pending = state.queued_total;
    Ok(counts)
}

/// A per-lane event tally: callers push lane words (bit `l` set = one event
/// in lane `l`) and the tally accumulates per-lane counts. Words buffer into
/// a 64×64 tile that is bit-transposed and popcounted when full, so the
/// amortized cost per push is a store plus ~2 word operations instead of a
/// 64-iteration bit loop — the accounting backbone of the bit-sliced lane
/// kernel's per-edge reception/collision and per-receiver rx tallies.
struct LaneTally {
    buf: [u64; 64],
    fill: usize,
    totals: [u64; 64],
}

impl LaneTally {
    fn new() -> Self {
        LaneTally {
            buf: [0u64; 64],
            fill: 0,
            totals: [0u64; 64],
        }
    }

    #[inline]
    fn push(&mut self, word: u64) {
        self.buf[self.fill] = word;
        self.fill += 1;
        if self.fill == 64 {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.fill == 0 {
            return;
        }
        for w in self.buf[self.fill..].iter_mut() {
            *w = 0;
        }
        transpose64(&mut self.buf);
        for (l, &w) in self.buf.iter().enumerate() {
            self.totals[l] += u64::from(w.count_ones());
        }
        self.fill = 0;
    }
}

/// Runs up to 64 seeds of one grid point through a single pass over the slot
/// structure, bit-sliced: lane `l` of every `u64` lane word tracks seed
/// `seeds[l]`, and the returned counters are bit-identical to running
/// [`run_frames`] once per seed (`config.seed` is ignored).
///
/// One slot loop serves all lanes: the candidate scan, interference adjacency
/// walk and generation schedule are shared, per-node backlog and transmit
/// sets widen to lane words, slotted-ALOHA decisions come from batched
/// counter-RNG lane draws ([`CounterRng::bernoulli_lanes`] over per-`(node,
/// lane)` hoisted keys), and interference resolves lane-parallel with the
/// same saturating once/twice masks as [`SlotBuffers::resolve`] — one `u64`
/// operation where the scalar kernel pays one per seed. Accounting is
/// bit-planed too: transmissions, deliveries, drops, receptions and rx
/// exposure accumulate through [`LaneTally`] transposed popcounts, retry
/// counters live as per-node bit planes incremented by a masked half-adder
/// chain (with the retry-budget comparison folded into the same pass), and
/// collisions follow by conservation (`deg·tx − receptions`) instead of a
/// second per-edge tally; per-event scalar work survives only for
/// lane-specific values (delivery latency, queue pops). Bit-exactness rests
/// on the counter RNG: draws are pure functions of `(seed, node, slot)`, so
/// masking a batched draw with the backlog is indistinguishable from the
/// scalar kernel's conditional draws.
///
/// Lanes support deterministic traffic (periodic or staggered — generation is
/// lane-uniform, so backlog refills are one mask store) *and* Bernoulli
/// traffic, under scheduled or slotted-ALOHA access, on clean and conflicted
/// plans. Bernoulli generation draws are batched exactly like the MAC's
/// ([`CounterRng::bernoulli_lanes`] over per-`(node, lane)` hoisted
/// traffic-stream keys), and the per-lane backlog counters it needs —
/// per-lane queue lengths are no longer uniform — are bit-planed like the
/// retry clock: plane `k` of a node holds bit `k` of every lane's queue
/// length, incremented by a masked half-adder chain on generation and
/// decremented by its borrow-chain mirror on pops, with the backlog word
/// recovered as the planes' OR. Only arrival timestamps (for delivery
/// latency) stay per-event scalar, touched on generation and pop events
/// alone.
///
/// # Errors
///
/// Returns [`EngineError::InvalidKernelConfig`] for an empty or over-64 seed
/// batch, a trace traffic model (per-seed traces have no lane batching — use
/// the Bernoulli model they were compiled from), a trace-replayed MAC, a zero
/// traffic period or an out-of-range probability.
pub fn run_frames_lanes(
    plan: &FramePlan,
    config: &KernelConfig,
    seeds: &[u64],
) -> Result<Vec<KernelCounts>> {
    let lanes = seeds.len();
    if lanes == 0 || lanes > 64 {
        return Err(EngineError::InvalidKernelConfig(format!(
            "lane batches take 1..=64 seeds, got {lanes}"
        )));
    }
    // Traffic mode: deterministic (lane-uniform generation) or Bernoulli
    // (lane-sliced generation draws with bit-planed backlog counters). The
    // deterministic arms keep `(traffic_period, staggered)`; the Bernoulli
    // arm never reads them.
    let bernoulli_p = match &config.traffic {
        KernelTraffic::Bernoulli { p } => {
            if !(0.0..=1.0).contains(p) {
                return Err(EngineError::InvalidKernelConfig(
                    "bernoulli probability must be in [0, 1]".into(),
                ));
            }
            Some(*p)
        }
        _ => None,
    };
    let (traffic_period, staggered) = match &config.traffic {
        KernelTraffic::Periodic { period } if *period > 0 => (*period, false),
        KernelTraffic::Staggered { period } if *period > 0 => (*period, true),
        KernelTraffic::Periodic { .. } | KernelTraffic::Staggered { .. } => {
            return Err(EngineError::InvalidKernelConfig(
                "periodic traffic period must be positive".into(),
            ));
        }
        // The period is meaningless under Bernoulli traffic; 1 keeps the
        // (unused) deterministic arithmetic well-defined.
        KernelTraffic::Bernoulli { .. } => (1, false),
        other => {
            return Err(EngineError::InvalidKernelConfig(format!(
                "lane batches need periodic, staggered or bernoulli traffic, got {other:?}"
            )));
        }
    };
    let aloha_p = match &config.mac {
        KernelMac::Scheduled => None,
        KernelMac::Aloha { p } => {
            if !(0.0..=1.0).contains(p) {
                return Err(EngineError::InvalidKernelConfig(
                    "aloha probability must be in [0, 1]".into(),
                ));
            }
            Some(*p)
        }
        KernelMac::AlohaTrace(_) => {
            return Err(EngineError::InvalidKernelConfig(
                "lane batches draw MAC decisions inline; trace-replayed MACs are per-run".into(),
            ));
        }
    };

    // Validation is done: one lane batch, and each seed is one simulated run
    // on its lane dispatch path.
    {
        use crate::telemetry::Counter;
        let registry = crate::telemetry::telemetry();
        registry.count(Counter::LaneBatches, 1);
        registry.count(Counter::LaneRuns, lanes as u64);
        note_dispatch(
            if bernoulli_p.is_some() {
                Counter::DispatchLaneBernoulli
            } else {
                Counter::DispatchLaneScalar
            },
            lanes as u64,
        );
    }

    let n = plan.num_nodes();
    let orig = plan.original_ids();
    let lane_mask = if lanes == 64 {
        !0u64
    } else {
        (1u64 << lanes) - 1
    };
    let mut counts = vec![KernelCounts::default(); lanes];

    // Per-(node, lane) hoisted MAC keys: one batched lane draw per
    // (candidate, slot) replaces one full hash per (candidate, slot, seed).
    let (mac_hoisted, mac_threshold) = match aloha_p {
        Some(p) => {
            let rngs: Vec<CounterRng> = seeds.iter().map(|&s| CounterRng::mac(s)).collect();
            let mut hoisted = vec![0u64; n * lanes];
            for (v, &ov) in orig.iter().enumerate() {
                for (l, rng) in rngs.iter().enumerate() {
                    hoisted[v * lanes + l] = rng.hoist_node(u64::from(ov));
                }
            }
            (hoisted, CounterRng::bernoulli_threshold(p))
        }
        None => (Vec::new(), 0),
    };
    let residues = staggered.then(|| StaggerResidues::build(plan, traffic_period));

    // Per-(node, lane) hoisted traffic keys for Bernoulli generation: the
    // same batching as the MAC draws, on the traffic stream.
    let (traffic_hoisted, traffic_threshold) = match bernoulli_p {
        Some(p) => {
            let rngs: Vec<CounterRng> = seeds.iter().map(|&s| CounterRng::traffic(s)).collect();
            let mut hoisted = vec![0u64; n * lanes];
            for (v, &ov) in orig.iter().enumerate() {
                for (l, rng) in rngs.iter().enumerate() {
                    hoisted[v * lanes + l] = rng.hoist_node(u64::from(ov));
                }
            }
            (hoisted, CounterRng::bernoulli_threshold(p))
        }
        None => (Vec::new(), 0),
    };

    // Lane-sliced queue state. Deterministic traffic keeps implicit
    // arithmetic-progression queues as in the scalar loop: one popped counter
    // per (node, lane) — touched only on pop events — with lane-uniform
    // generation refilling whole backlog words. Bernoulli traffic has
    // non-uniform per-lane queue lengths instead, so those become bit planes
    // mirroring the retry clock below: plane `k` of a node holds bit `k` of
    // every lane's queue length (a length never exceeds the slot count, so
    // the plane width is the slot count's bit length), incremented by a
    // masked half-adder chain on generation draws and decremented by the
    // borrow-chain mirror on pops; the backlog word is the planes' OR. Only
    // arrival timestamps stay per-event scalar (delivery latency needs the
    // head packet's generation slot), in per-(node, lane) FIFOs touched on
    // generation and pop events alone. Both modes share the per-node lane
    // backlog words and the all-lane queued total for the O(1) skip of slots
    // with nothing queued anywhere. The retry clock is bit-planed: plane `k`
    // of a node holds bit `k` of every lane's attempt count, so the
    // per-transmission increment and the retry-budget comparison are masked
    // half-adder chains over whole lane words instead of per-lane counter
    // updates.
    let target = u64::from(config.max_retries) + 1;
    let attempt_bits = (64 - target.leading_zeros()) as usize;
    let qlen_bits = match bernoulli_p {
        Some(_) => (64 - config.slots.leading_zeros()) as usize,
        None => 0,
    };
    let mut popped = vec![0u64; if bernoulli_p.is_some() { 0 } else { n * lanes }];
    let mut qlen_planes = vec![0u64; n * qlen_bits];
    let mut arrival_times: Vec<VecDeque<u64>> = if bernoulli_p.is_some() {
        vec![VecDeque::new(); n * lanes]
    } else {
        Vec::new()
    };
    let mut attempt_planes = vec![0u64; n * attempt_bits];
    let mut backlog = vec![0u64; n];
    let mut queued_total: u64 = 0;
    let mut gen_tally = LaneTally::new();

    // Per-slot interference state, lane-wide: tx/once/twice words per node,
    // cleared via touched lists rather than O(n) sweeps.
    let mut tx_lanes = vec![0u64; n];
    let mut once = vec![0u64; n];
    let mut twice = vec![0u64; n];
    let mut tx_list: Vec<u32> = Vec::with_capacity(n);
    let mut heard: Vec<u32> = Vec::with_capacity(n);
    let mut recv_tally = LaneTally::new();
    let mut rx_tally = LaneTally::new();
    let mut tx_tally = LaneTally::new();
    let mut deliver_tally = LaneTally::new();
    let mut drop_tally = LaneTally::new();
    // Degree-weighted tallies: one tally per degree bit turns a `degree ×
    // popcount(word)` contribution into plain bit counts scaled by 2^k at
    // flush. Clean slots push delivered lanes (every delivery is heard by
    // all `degree` neighbours); conflicted slots push transmitting lanes,
    // from which collisions follow by conservation (every (edge, lane)
    // attempt is either received or collided, so collisions = deg·tx −
    // receptions) without a second per-edge tally.
    let max_degree = (0..n).map(|v| u64::from(plan.degree(v))).max().unwrap_or(0);
    let degree_bits = (64 - max_degree.leading_zeros()) as usize;
    let mut degree_tallies: Vec<LaneTally> = (0..degree_bits).map(|_| LaneTally::new()).collect();
    let mut degree_tx_tallies: Vec<LaneTally> =
        (0..degree_bits).map(|_| LaneTally::new()).collect();

    let frame_period = plan.period() as u64;
    let phase_of = |v: usize| -> u64 {
        if staggered {
            u64::from(orig[v]) % traffic_period
        } else {
            0
        }
    };
    for t in 0..config.slots {
        // Traffic generation. Bernoulli: one batched lane draw per node
        // (pure functions of `(seed, node, slot)`, bit-identical to the
        // scalar kernel's draws), folded into the bit-planed queue-length
        // counters by a half-adder increment over the drawn lanes; the
        // per-lane generated tally and the arrival-time pushes ride the same
        // events. Deterministic traffic is lane-uniform: a generating node
        // becomes backlogged in every lane (its per-lane queue lengths
        // differ, but all grow by one).
        if bernoulli_p.is_some() {
            for v in 0..n {
                let gen = CounterRng::bernoulli_lanes(
                    &traffic_hoisted[v * lanes..(v + 1) * lanes],
                    traffic_threshold,
                    t,
                );
                if gen == 0 {
                    continue;
                }
                gen_tally.push(gen);
                queued_total += u64::from(gen.count_ones());
                backlog[v] |= gen;
                let planes = &mut qlen_planes[v * qlen_bits..(v + 1) * qlen_bits];
                let mut carry = gen;
                for plane in planes.iter_mut() {
                    let sum = *plane ^ carry;
                    carry &= *plane;
                    *plane = sum;
                }
                debug_assert_eq!(carry, 0, "queue length exceeded the plane width");
                let mut bits = gen;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    arrival_times[v * lanes + l].push_back(t);
                }
            }
        } else if staggered {
            let r = (t % traffic_period) as usize;
            match &residues {
                Some(Some(res)) => {
                    if res.counts[r] > 0 {
                        for (w, &word) in res.words_at(r).iter().enumerate() {
                            let mut bits = word;
                            while bits != 0 {
                                let v = w * 64 + bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                backlog[v] = lane_mask;
                            }
                        }
                        queued_total += u64::from(res.counts[r]) * lanes as u64;
                    }
                }
                _ => {
                    for (v, &ov) in orig.iter().enumerate() {
                        if u64::from(ov) % traffic_period == r as u64 {
                            backlog[v] = lane_mask;
                            queued_total += lanes as u64;
                        }
                    }
                }
            }
        } else if t.is_multiple_of(traffic_period) {
            backlog[..n].fill(lane_mask);
            queued_total += n as u64 * lanes as u64;
        }
        if queued_total == 0 {
            continue; // idle slots fall out of the end-of-run identity
        }

        // Shared candidate scan; per-candidate lane transmit words.
        let slot = (t % frame_period) as usize;
        let aligned_generated = t / traffic_period + 1;
        tx_list.clear();
        for v in plan.slot_candidates(slot) {
            let backlogged = backlog[v];
            if backlogged == 0 {
                continue;
            }
            let tx = match aloha_p {
                None => backlogged,
                Some(_) => {
                    // Draws are pure functions of (seed, node, slot), so
                    // masking the batched draw with the backlog reproduces
                    // the scalar kernel's backlogged-only draws exactly.
                    backlogged
                        & CounterRng::bernoulli_lanes(
                            &mac_hoisted[v * lanes..(v + 1) * lanes],
                            mac_threshold,
                            t,
                        )
                }
            };
            if tx != 0 {
                tx_lanes[v] = tx;
                tx_list.push(v as u32);
            }
        }
        if tx_list.is_empty() {
            continue;
        }

        let conflicted = plan.slot_conflicted(slot);
        if conflicted {
            // Lane-parallel saturating interference count: `once`/`twice`
            // mirror SlotBuffers::resolve word-wise, one word per lane set.
            for &v in &tx_list {
                let tw = tx_lanes[v as usize];
                let (entry_words, entry_bits) = plan.mask_entries(v as usize);
                for (&w, &mask) in entry_words.iter().zip(entry_bits) {
                    let mut bits = mask;
                    while bits != 0 {
                        let u = w as usize * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let cur = once[u];
                        if cur == 0 {
                            heard.push(u as u32);
                        }
                        twice[u] |= cur & tw;
                        once[u] = cur | tw;
                    }
                }
            }
        }

        // Settle transmitters word-parallel. On a clean slot every
        // transmitting lane delivers (same closed form as
        // `settle_clean_slot`); on a conflicted slot lane `l` of `v`
        // delivers iff no neighbour is lost in lane `l`. Per-lane scalar
        // work survives only where an event carries a lane-specific value
        // (delivery latency, queue pops); transmissions, deliveries, drops,
        // clean-slot receptions and the retry clock all run as bit-plane
        // arithmetic over whole lane words.
        for &v in &tx_list {
            let v = v as usize;
            let tx = tx_lanes[v];
            let delivered_lanes = if conflicted {
                let (entry_words, entry_bits) = plan.mask_entries(v);
                let mut lost_any = 0u64;
                for (&w, &mask) in entry_words.iter().zip(entry_bits) {
                    let mut bits = mask;
                    while bits != 0 {
                        let u = w as usize * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let lost = tx_lanes[u] | twice[u];
                        recv_tally.push(tx & !lost);
                        lost_any |= lost;
                    }
                }
                let mut degree = u64::from(plan.degree(v));
                let mut k = 0;
                while degree != 0 {
                    if degree & 1 == 1 {
                        degree_tx_tallies[k].push(tx);
                    }
                    degree >>= 1;
                    k += 1;
                }
                tx & !lost_any
            } else {
                tx
            };
            tx_tally.push(tx);
            // Retry clock: attempts += 1 on every transmitting lane via a
            // masked half-adder carry chain, with a simultaneous equality
            // compare against `target = max_retries + 1`. The final carry is
            // always zero — a lane that reaches `target` pops (and resets)
            // in this same slot, so the planes never hold a larger value.
            let planes = &mut attempt_planes[v * attempt_bits..(v + 1) * attempt_bits];
            let mut carry = tx;
            let mut at_limit = !0u64;
            for (k, plane) in planes.iter_mut().enumerate() {
                let sum = *plane ^ carry;
                carry &= *plane;
                *plane = sum;
                at_limit &= if target >> k & 1 == 1 { sum } else { !sum };
            }
            let drop_lanes = at_limit & tx & !delivered_lanes;
            deliver_tally.push(delivered_lanes);
            drop_tally.push(drop_lanes);
            if !conflicted && delivered_lanes != 0 {
                // Every delivered lane is heard by all `degree` neighbours;
                // count per degree bit, scaled by 2^k at flush.
                let mut degree = u64::from(plan.degree(v));
                let mut k = 0;
                while degree != 0 {
                    if degree & 1 == 1 {
                        degree_tallies[k].push(delivered_lanes);
                    }
                    degree >>= 1;
                    k += 1;
                }
            }
            let pop_lanes = delivered_lanes | drop_lanes;
            if pop_lanes != 0 {
                for plane in attempt_planes[v * attempt_bits..(v + 1) * attempt_bits].iter_mut() {
                    *plane &= !pop_lanes;
                }
                if bernoulli_p.is_some() {
                    // Half-adder decrement (borrow-chain mirror of the
                    // generation increment) of the popping lanes' queue
                    // lengths; the backlog word is the planes' OR. Latency
                    // needs the head arrival slot — the one per-event scalar
                    // read left in the Bernoulli path.
                    let planes = &mut qlen_planes[v * qlen_bits..(v + 1) * qlen_bits];
                    let mut borrow = pop_lanes;
                    let mut nonzero = 0u64;
                    for plane in planes.iter_mut() {
                        let sum = *plane ^ borrow;
                        borrow &= !*plane;
                        *plane = sum;
                        nonzero |= sum;
                    }
                    debug_assert_eq!(borrow, 0, "popped an empty lane queue");
                    backlog[v] = nonzero;
                    let mut bits = pop_lanes;
                    while bits != 0 {
                        let l = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let generated_at = arrival_times[v * lanes + l]
                            .pop_front()
                            .expect("transmitters are backlogged");
                        if delivered_lanes >> l & 1 == 1 {
                            counts[l].total_latency += t - generated_at;
                        }
                        queued_total -= 1;
                    }
                } else {
                    let phase = phase_of(v);
                    let gen = if staggered {
                        if t >= phase {
                            (t - phase) / traffic_period + 1
                        } else {
                            0
                        }
                    } else {
                        aligned_generated
                    };
                    let mut bits = pop_lanes;
                    while bits != 0 {
                        let l = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let idx = v * lanes + l;
                        if delivered_lanes >> l & 1 == 1 {
                            counts[l].total_latency += t - (phase + popped[idx] * traffic_period);
                        }
                        popped[idx] += 1;
                        queued_total -= 1;
                        if gen <= popped[idx] {
                            backlog[v] &= !(1u64 << l);
                        }
                    }
                }
            }
        }

        if conflicted {
            // Per-lane receiver tally (≥ 1 heard, not transmitting), then
            // clear only what this slot touched.
            for &u in &heard {
                let u = u as usize;
                rx_tally.push(once[u] & !tx_lanes[u]);
                once[u] = 0;
                twice[u] = 0;
            }
            heard.clear();
        }
        for &v in &tx_list {
            tx_lanes[v as usize] = 0;
        }
    }

    recv_tally.flush();
    rx_tally.flush();
    tx_tally.flush();
    deliver_tally.flush();
    drop_tally.flush();
    for tally in degree_tallies
        .iter_mut()
        .chain(degree_tx_tallies.iter_mut())
    {
        tally.flush();
    }
    for (l, lane) in counts.iter_mut().enumerate() {
        lane.transmissions += tx_tally.totals[l];
        lane.tx_slots += tx_tally.totals[l];
        lane.packets_delivered += deliver_tally.totals[l];
        lane.packets_dropped += drop_tally.totals[l];
        for (k, tally) in degree_tallies.iter().enumerate() {
            lane.receptions += tally.totals[l] << k;
            lane.rx_slots += tally.totals[l] << k;
        }
        let conflicted_attempts: u64 = degree_tx_tallies
            .iter()
            .enumerate()
            .map(|(k, tally)| tally.totals[l] << k)
            .sum();
        lane.receptions += recv_tally.totals[l];
        lane.collisions += conflicted_attempts - recv_tally.totals[l];
        lane.rx_slots += rx_tally.totals[l];
    }

    if config.slots > 0 {
        if bernoulli_p.is_some() {
            // Per-lane generated totals come off the generation tally (the
            // draws are lane-specific); pending and idle by conservation.
            gen_tally.flush();
            for (l, lane) in counts.iter_mut().enumerate() {
                lane.packets_generated = gen_tally.totals[l];
                lane.packets_pending =
                    gen_tally.totals[l] - lane.packets_delivered - lane.packets_dropped;
                lane.idle_slots = n as u64 * config.slots - lane.tx_slots - lane.rx_slots;
            }
        } else {
            // Lane-uniform closed-form generation totals (as in the scalar
            // deterministic loop), then pending and idle by conservation.
            let generated = if staggered {
                (0..n as u64)
                    .map(|id| {
                        let phase = id % traffic_period;
                        if config.slots > phase {
                            (config.slots - 1 - phase) / traffic_period + 1
                        } else {
                            0
                        }
                    })
                    .sum()
            } else {
                ((config.slots - 1) / traffic_period + 1) * n as u64
            };
            for lane in counts.iter_mut() {
                lane.packets_generated = generated;
                lane.packets_pending = generated - lane.packets_delivered - lane.packets_dropped;
                lane.idle_slots = n as u64 * config.slots - lane.tx_slots - lane.rx_slots;
            }
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::{FrameSchedule, InterferenceCsr};

    /// 0 — 1 — 2 in a line, each affecting its immediate neighbours.
    fn line3() -> InterferenceCsr {
        InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]]).unwrap()
    }

    fn plan(slots: &[usize], period: usize) -> FramePlan {
        let frames = FrameSchedule::from_assignment(slots, period).unwrap();
        FramePlan::new(&frames, &line3()).unwrap()
    }

    fn config(slots: u64, traffic: KernelTraffic, max_retries: u32) -> KernelConfig {
        KernelConfig {
            slots,
            traffic,
            mac: KernelMac::Scheduled,
            max_retries,
            seed: 7,
        }
    }

    #[test]
    fn collision_free_frames_deliver_everything() {
        // 3 slots, one node each: no two in-range nodes share a slot.
        let counts = run_frames(
            &plan(&[0, 1, 2], 3),
            &config(30, KernelTraffic::Periodic { period: 10 }, 8),
        )
        .unwrap();
        assert_eq!(counts.packets_generated, 9);
        assert_eq!(counts.collisions, 0);
        assert_eq!(counts.packets_dropped, 0);
        assert_eq!(
            counts.packets_generated,
            counts.packets_delivered + counts.packets_pending
        );
        // One transmission per delivered packet.
        assert_eq!(counts.transmissions, counts.packets_delivered);
        assert_eq!(
            counts.tx_slots + counts.rx_slots + counts.idle_slots,
            3 * 30
        );
    }

    #[test]
    fn shared_slots_collide_and_drop_after_retries() {
        // Nodes 0 and 2 share slot 0 and both affect node 1: every transmission
        // collides at node 1, so every packet is eventually dropped.
        let counts = run_frames(
            &plan(&[0, 1, 0], 2),
            &config(40, KernelTraffic::Periodic { period: 40 }, 1),
        )
        .unwrap();
        assert!(counts.collisions > 0);
        // Node 1 transmits alone and delivers; 0 and 2 drop after 2 attempts.
        assert_eq!(counts.packets_delivered, 1);
        assert_eq!(counts.packets_dropped, 2);
        assert_eq!(counts.packets_pending, 0);
    }

    #[test]
    fn no_traffic_is_all_idle() {
        let counts = run_frames(&plan(&[0, 1, 2], 3), &config(17, KernelTraffic::None, 3)).unwrap();
        assert_eq!(
            counts,
            KernelCounts {
                idle_slots: 3 * 17,
                ..KernelCounts::default()
            }
        );
    }

    #[test]
    fn zero_slots_is_a_no_op() {
        let counts = run_frames(
            &plan(&[0, 1, 2], 3),
            &config(0, KernelTraffic::Periodic { period: 4 }, 0),
        )
        .unwrap();
        assert_eq!(counts, KernelCounts::default());
    }

    #[test]
    fn staggered_traffic_spreads_generation_phases() {
        // Collision-free plan: each node's generation phase is its original id
        // mod the traffic period, so packets are spread over time.
        let counts = run_frames(
            &plan(&[0, 1, 2], 3),
            &config(30, KernelTraffic::Staggered { period: 3 }, 8),
        )
        .unwrap();
        assert_eq!(counts.packets_generated, 30);
        assert_eq!(counts.collisions, 0);
        assert_eq!(
            counts.packets_generated,
            counts.packets_delivered + counts.packets_pending
        );
        // Node 0 generates at t=0,3,..., node 2 at t=2,5,...: totals match the
        // closed form (slots - 1 - phase) / period + 1.
        let by_hand: u64 = (0..3u64).map(|phase| (30 - 1 - phase) / 3 + 1).sum();
        assert_eq!(counts.packets_generated, by_hand);
    }

    #[test]
    fn bernoulli_traffic_conserves_packets_and_replays() {
        let plan = plan(&[0, 1, 2], 3);
        let cfg = config(200, KernelTraffic::Bernoulli { p: 0.2 }, 2);
        let a = run_frames(&plan, &cfg).unwrap();
        let b = run_frames(&plan, &cfg).unwrap();
        assert_eq!(a, b, "counter-based draws replay bit-identically");
        assert!(a.packets_generated > 0);
        assert_eq!(
            a.packets_generated,
            a.packets_delivered + a.packets_dropped + a.packets_pending
        );
        assert_eq!(a.tx_slots + a.rx_slots + a.idle_slots, 3 * 200);
    }

    #[test]
    fn transpose64_matches_the_naive_definition() {
        // Pseudo-random but deterministic 64x64 matrix.
        let rng = CounterRng::new(5, 5);
        let mut a = [0u64; 64];
        for (i, w) in a.iter_mut().enumerate() {
            *w = rng.draw(i as u64, 0);
        }
        let mut t = a;
        transpose64(&mut t);
        for (i, &row) in a.iter().enumerate() {
            for (j, &col) in t.iter().enumerate() {
                assert_eq!(
                    col >> i & 1,
                    row >> j & 1,
                    "bit ({i}, {j}) must move to ({j}, {i})"
                );
            }
        }
        // Transposing twice is the identity.
        transpose64(&mut t);
        assert_eq!(t, a);
    }

    #[test]
    fn batched_trace_build_matches_per_draw_construction() {
        // The block-wise build (hoisted keys, integer thresholds, bit
        // transpose) must reproduce naive per-(node, slot) draws bit for bit,
        // including at ragged node/slot counts that exercise the padding.
        for (nodes, slots) in [(1usize, 1u64), (3, 70), (64, 64), (65, 130), (130, 65)] {
            let assignment: Vec<usize> = (0..nodes).map(|v| v % 3).collect();
            let lists: Vec<Vec<usize>> = (0..nodes)
                .map(|v| if v + 1 < nodes { vec![v + 1] } else { vec![] })
                .collect();
            let adjacency = InterferenceCsr::from_lists(&lists).unwrap();
            let frames = FrameSchedule::from_assignment(&assignment, 3).unwrap();
            let plan = FramePlan::new(&frames, &adjacency).unwrap();
            for p in [0.0, 0.037, 0.5, 1.0] {
                let trace = TrafficTrace::bernoulli(&plan, 99, p, slots).unwrap();
                let rng = CounterRng::traffic(99);
                let orig = plan.original_ids();
                let mut total = 0u64;
                for t in 0..slots {
                    let words = trace.words_at(t);
                    let mut count = 0u32;
                    for (v, &ov) in orig.iter().enumerate() {
                        let expected = rng.bernoulli(p, u64::from(ov), t);
                        let got = words[v / 64] >> (v % 64) & 1 == 1;
                        assert_eq!(got, expected, "n={nodes} slots={slots} p={p} v={v} t={t}");
                        count += u32::from(expected);
                    }
                    assert_eq!(trace.count_at(t), count);
                    // Padding bits beyond `nodes` stay clear.
                    let tail_bits: u32 = words.iter().map(|w| w.count_ones()).sum();
                    assert_eq!(tail_bits, count, "padding bits leaked at t={t}");
                    total += u64::from(count);
                }
                assert_eq!(trace.total_generated(), total);
            }
        }
    }

    #[test]
    fn partially_conflicting_plans_narrow_to_clean_slots() {
        // Assignment [0, 1, 0] on the 3-line: slot 0 (nodes 0 and 2 sharing
        // neighbour 1) conflicts, slot 1 (node 1 alone) is clean.
        let partial = plan(&[0, 1, 0], 2);
        assert!(!partial.conflict_free());
        assert_eq!(partial.conflicted_slots(), 1);
        assert!(partial.slot_conflicted(0));
        assert!(!partial.slot_conflicted(1));

        // The bitmask-narrowed kernel must match the full-bitset oracle
        // (every slot forced conflicted) bit for bit, across deterministic
        // and stochastic workloads.
        let mut oracle = partial.clone();
        oracle.pessimize_conflicts();
        assert_eq!(oracle.conflicted_slots(), 2);
        for traffic in [
            KernelTraffic::Periodic { period: 3 },
            KernelTraffic::Staggered { period: 2 },
            KernelTraffic::Bernoulli { p: 0.3 },
        ] {
            for retries in [0u32, 2] {
                let cfg = config(200, traffic.clone(), retries);
                let narrowed = run_frames(&partial, &cfg).unwrap();
                let full = run_frames(&oracle, &cfg).unwrap();
                assert_eq!(narrowed, full, "traffic {traffic:?} retries {retries}");
                assert!(narrowed.packets_generated > 0);
            }
        }
    }

    #[test]
    fn auto_compiled_traces_match_explicit_traces_and_thresholds() {
        // Above the auto-trace threshold the inline Bernoulli path compiles an
        // internal trace; its counters must equal an explicit-trace run (and a
        // below-threshold inline run of the same seed/p agrees on the shared
        // prefix workload by construction of the counter RNG).
        let plan = plan(&[0, 1, 0], 2);
        let slots = 2_000; // 3 nodes x 2000 slots = 6000 >= AUTO_TRACE_MIN_DRAWS
        assert!(3 * slots >= AUTO_TRACE_MIN_DRAWS);
        let inline_cfg = config(slots, KernelTraffic::Bernoulli { p: 0.21 }, 1);
        let trace = TrafficTrace::bernoulli(&plan, inline_cfg.seed, 0.21, slots).unwrap();
        let traced_cfg = config(slots, KernelTraffic::Trace(Arc::new(trace)), 1);
        let a = run_frames(&plan, &inline_cfg).unwrap();
        let b = run_frames(&plan, &traced_cfg).unwrap();
        assert_eq!(a, b);
        assert!(a.packets_generated > 0);
    }

    #[test]
    fn staggered_residue_bitmaps_match_the_per_node_walk() {
        // Force the stochastic (general) loop with an ALOHA MAC so staggered
        // generation runs through the residue bitmaps.
        let plan = plan(&[0, 1, 2], 3);
        let mut cfg = config(300, KernelTraffic::Staggered { period: 4 }, 2);
        cfg.mac = KernelMac::Aloha { p: 0.7 };
        let counts = run_frames(&plan, &cfg).unwrap();
        // Generation totals follow the closed form regardless of the MAC.
        let by_hand: u64 = (0..3u64).map(|id| (300 - 1 - id % 4) / 4 + 1).sum();
        assert_eq!(counts.packets_generated, by_hand);
        assert_eq!(
            counts.packets_generated,
            counts.packets_delivered + counts.packets_dropped + counts.packets_pending
        );
        // A period too long to materialize falls back to the per-node walk:
        // each node generates exactly once (at t = original id) within 300
        // slots, and totals stay conserved.
        let mut long_cfg = config(
            300,
            KernelTraffic::Staggered {
                period: STAGGER_RESIDUE_WORD_LIMIT + 1,
            },
            2,
        );
        long_cfg.mac = KernelMac::Aloha { p: 0.7 };
        let long_counts = run_frames(&plan, &long_cfg).unwrap();
        assert_eq!(long_counts.packets_generated, 3);
        assert_eq!(
            long_counts.packets_generated,
            long_counts.packets_delivered
                + long_counts.packets_dropped
                + long_counts.packets_pending
        );
    }

    #[test]
    fn traces_replay_identically_to_inline_bernoulli_draws() {
        let plan = plan(&[0, 1, 0], 2);
        let inline_cfg = config(300, KernelTraffic::Bernoulli { p: 0.15 }, 1);
        let trace = TrafficTrace::bernoulli(&plan, inline_cfg.seed, 0.15, 300).unwrap();
        assert_eq!(trace.num_nodes(), 3);
        assert_eq!(trace.num_slots(), 300);
        let traced_cfg = config(300, KernelTraffic::Trace(Arc::new(trace)), 1);
        let inline_counts = run_frames(&plan, &inline_cfg).unwrap();
        let traced_counts = run_frames(&plan, &traced_cfg).unwrap();
        assert_eq!(inline_counts, traced_counts);
        assert!(inline_counts.packets_generated > 0);
    }

    #[test]
    fn aloha_mac_thins_transmissions() {
        // All nodes candidates every slot (period-1 plan), ALOHA p = 0.5 under
        // saturating traffic: some backlogged nodes hold back each slot.
        let plan = plan(&[0, 0, 0], 1);
        let mut cfg = config(100, KernelTraffic::Periodic { period: 1 }, 0);
        cfg.mac = KernelMac::Aloha { p: 0.5 };
        let counts = run_frames(&plan, &cfg).unwrap();
        assert!(counts.transmissions > 0);
        assert!(
            counts.transmissions < 300,
            "p=0.5 must hold some transmissions back"
        );
        assert_eq!(
            counts.packets_generated,
            counts.packets_delivered + counts.packets_dropped + counts.packets_pending
        );
        // Degenerate probabilities are deterministic.
        cfg.mac = KernelMac::Aloha { p: 0.0 };
        let silent = run_frames(&plan, &cfg).unwrap();
        assert_eq!(silent.transmissions, 0);
    }

    /// A conflicted plan with `pairs` slots, two interfering nodes per slot:
    /// every slot's full burst collides, so every visited slot wants a memo
    /// entry.
    fn paired_plan(pairs: usize) -> FramePlan {
        let n = 2 * pairs;
        let assignment: Vec<usize> = (0..n).map(|v| v / 2).collect();
        let lists: Vec<Vec<usize>> = (0..n)
            .map(|v| vec![if v % 2 == 0 { v + 1 } else { v - 1 }])
            .collect();
        let adjacency = InterferenceCsr::from_lists(&lists).unwrap();
        let frames = FrameSchedule::from_assignment(&assignment, pairs).unwrap();
        FramePlan::new(&frames, &adjacency).unwrap()
    }

    #[test]
    fn full_burst_memo_stays_under_its_byte_budget_on_large_periods() {
        // Direct accounting check: inserting one outcome per slot of a
        // large-period schedule must stop charging once the budget is hit,
        // never exceed it, and keep answering for the entries it kept.
        let plan = paired_plan(2048); // 2048-slot period, 4096 nodes
        let budget = 4096usize;
        let mut memo = FullBurstMemo::new(budget);
        let outcomes = [1u32, 1];
        for slot in 0..plan.period() {
            memo.insert(&plan, slot, &outcomes, 2);
            assert!(memo.bytes() <= budget, "budget exceeded at slot {slot}");
        }
        assert!(memo.bytes() > 0, "some entries fit");
        assert!(
            memo.entries.len() < plan.period(),
            "the budget must reject most of a large period"
        );
        // Kept entries replay; rejected ones report a miss.
        let kept = memo.entries.len();
        let hits = (0..plan.period())
            .filter(|&s| memo.get(&plan, s).is_some())
            .count();
        assert_eq!(hits, kept);
        // Re-inserting a kept slot charges nothing twice.
        let bytes = memo.bytes();
        memo.insert(&plan, 0, &outcomes, 2);
        assert_eq!(memo.bytes(), bytes);
    }

    #[test]
    fn capped_memo_never_changes_deterministic_results() {
        // The memo is a pure replay cache: running with a zero budget (every
        // burst recomputed), a tiny budget (some replayed) and an unbounded
        // one must produce identical counters on a conflicted large-period
        // schedule.
        let plan = paired_plan(64);
        for (traffic_period, staggered) in [(1u64, false), (3, false), (5, true)] {
            let cfg = config(
                400,
                if staggered {
                    KernelTraffic::Staggered {
                        period: traffic_period,
                    }
                } else {
                    KernelTraffic::Periodic {
                        period: traffic_period,
                    }
                },
                1,
            );
            let unbounded =
                run_deterministic(&plan, &cfg, traffic_period, staggered, usize::MAX).unwrap();
            let capped = run_deterministic(&plan, &cfg, traffic_period, staggered, 256).unwrap();
            let disabled = run_deterministic(&plan, &cfg, traffic_period, staggered, 0).unwrap();
            assert_eq!(unbounded, capped, "period {traffic_period}");
            assert_eq!(unbounded, disabled, "period {traffic_period}");
            assert!(unbounded.collisions > 0, "the paired plan must conflict");
        }
    }

    #[test]
    fn analytic_replay_matches_the_loop_kernels_bit_for_bit() {
        // Clean (conflict-free) scheduled runs dispatch to the closed-form
        // analytic replay; it must reproduce the slot-loop kernels exactly on
        // every traffic model, including the auto-traced Bernoulli path.
        let clean = plan(&[0, 1, 2], 3);
        assert!(clean.conflict_free());
        let big_slots = 2_000; // over the Bernoulli auto-trace threshold
        let trace = Arc::new(TrafficTrace::bernoulli(&clean, 7, 0.3, 500).unwrap());
        for traffic in [
            KernelTraffic::Periodic { period: 1 },
            KernelTraffic::Periodic { period: 7 },
            KernelTraffic::Staggered { period: 2 },
            KernelTraffic::Staggered { period: 13 },
            KernelTraffic::Trace(trace),
            KernelTraffic::Bernoulli { p: 0.25 },
        ] {
            for (slots, retries) in [(0u64, 0u32), (1, 0), (333, 2), (big_slots, 1)] {
                let slots = match &traffic {
                    KernelTraffic::Trace(tr) => slots.min(tr.num_slots()),
                    _ => slots,
                };
                let cfg = config(slots, traffic.clone(), retries);
                let analytic = run_frames(&clean, &cfg).unwrap();
                let looped = run_frames_loop(&clean, &cfg).unwrap();
                assert_eq!(analytic, looped, "traffic {traffic:?} slots {slots}");
                if slots > 100 {
                    assert!(analytic.packets_delivered > 0, "traffic {traffic:?}");
                }
            }
        }
        // Conflicted plans never take the analytic path; both entry points
        // agree trivially there too.
        let conflicted = plan(&[0, 1, 0], 2);
        let cfg = config(250, KernelTraffic::Periodic { period: 4 }, 1);
        assert_eq!(
            run_frames(&conflicted, &cfg).unwrap(),
            run_frames_loop(&conflicted, &cfg).unwrap()
        );
    }

    #[test]
    fn analytic_replay_accounts_for_silent_nodes() {
        // Node 2's slot is out of period: it never transmits, its arrivals
        // only accumulate pending — in the analytic path exactly as in the
        // loop.
        let silent = plan(&[0, 1, 9], 2);
        assert!(silent.conflict_free());
        for traffic in [
            KernelTraffic::Periodic { period: 5 },
            KernelTraffic::Staggered { period: 3 },
        ] {
            let cfg = config(120, traffic.clone(), 2);
            let analytic = run_frames(&silent, &cfg).unwrap();
            assert_eq!(
                analytic,
                run_frames_loop(&silent, &cfg).unwrap(),
                "traffic {traffic:?}"
            );
            assert!(analytic.packets_pending > 0, "silent node stays backlogged");
        }
    }

    #[test]
    fn partial_conflict_analytic_matches_the_loop_bit_for_bit() {
        // A conflicted minority (slot 0 of 8) below the dispatch threshold:
        // clean classes replay closed-form, only the conflicted class loops.
        // Both the direct hybrid kernel and the `run_frames` dispatch must be
        // bit-identical to the full slot loop, including with a silent node.
        for assignment in [&[0usize, 4, 0][..], &[0, 9, 0][..]] {
            let partial = plan(assignment, 8);
            assert!(!partial.conflict_free());
            assert!(partial.conflicted_slots() * ANALYTIC_CONFLICT_DENOM <= partial.period());
            for (traffic_period, staggered) in [(1u64, false), (3, false), (2, true), (5, true)] {
                for (slots, retries) in [(0u64, 0u32), (1, 0), (7, 2), (333, 1), (400, 0)] {
                    let traffic = if staggered {
                        KernelTraffic::Staggered {
                            period: traffic_period,
                        }
                    } else {
                        KernelTraffic::Periodic {
                            period: traffic_period,
                        }
                    };
                    let cfg = config(slots, traffic, retries);
                    let looped = run_frames_loop(&partial, &cfg).unwrap();
                    let hybrid =
                        run_analytic_partial(&partial, &cfg, traffic_period, staggered).unwrap();
                    assert_eq!(
                        hybrid, looped,
                        "assignment {assignment:?} period {traffic_period} staggered \
                         {staggered} slots {slots} retries {retries}"
                    );
                    assert_eq!(run_frames(&partial, &cfg).unwrap(), looped);
                    if slots > 100 {
                        assert!(looped.collisions > 0, "the shared slot must conflict");
                    }
                }
            }
        }
        // Above the threshold (half the period conflicted) the hybrid is not
        // dispatched, but parity still holds when called directly.
        let heavy = plan(&[0, 1, 0], 2);
        assert!(heavy.conflicted_slots() * ANALYTIC_CONFLICT_DENOM > heavy.period());
        let cfg = config(250, KernelTraffic::Periodic { period: 4 }, 1);
        assert_eq!(
            run_analytic_partial(&heavy, &cfg, 4, false).unwrap(),
            run_frames_loop(&heavy, &cfg).unwrap()
        );
    }

    #[test]
    fn aloha_decision_traces_replay_inline_aloha_bit_for_bit() {
        // Period-1 all-candidates plan (classic slotted ALOHA): replaying MAC
        // decisions from a compiled bitmap must equal inline MAC draws.
        let plan = plan(&[0, 0, 0], 1);
        for p in [0.0, 0.35, 1.0] {
            for traffic in [
                KernelTraffic::Periodic { period: 2 },
                KernelTraffic::Bernoulli { p: 0.3 },
            ] {
                let mut inline_cfg = config(300, traffic.clone(), 1);
                inline_cfg.mac = KernelMac::Aloha { p };
                let trace = TrafficTrace::aloha_decisions(&plan, inline_cfg.seed, p, 300).unwrap();
                let mut traced_cfg = inline_cfg.clone();
                traced_cfg.mac = KernelMac::AlohaTrace(Arc::new(trace));
                assert_eq!(
                    run_frames(&plan, &inline_cfg).unwrap(),
                    run_frames(&plan, &traced_cfg).unwrap(),
                    "p={p} traffic {traffic:?}"
                );
            }
        }
        // MAC traces live on the MAC stream: they must not equal the traffic
        // stream's generation bitmaps.
        let mac = TrafficTrace::aloha_decisions(&plan, 7, 0.35, 300).unwrap();
        let traffic = TrafficTrace::bernoulli(&plan, 7, 0.35, 300).unwrap();
        assert_ne!(mac, traffic, "streams must decorrelate");
    }

    #[test]
    fn lane_batches_match_scalar_runs_on_every_lane() {
        // Each lane of a bit-sliced batch must be bit-identical to the scalar
        // run of its seed, on clean and partially conflicted plans, under
        // scheduled and ALOHA access, including partial (<64) batches.
        let seeds: Vec<u64> = (0..64).map(|i| i * 17 + 3).collect();
        for plan in [plan(&[0, 1, 2], 3), plan(&[0, 1, 0], 2)] {
            for mac in [KernelMac::Scheduled, KernelMac::Aloha { p: 0.45 }] {
                for traffic in [
                    KernelTraffic::Periodic { period: 3 },
                    KernelTraffic::Staggered { period: 4 },
                    KernelTraffic::Bernoulli { p: 0.3 },
                ] {
                    for batch in [1usize, 5, 64] {
                        let mut cfg = config(150, traffic.clone(), 1);
                        cfg.mac = mac.clone();
                        let lanes = run_frames_lanes(&plan, &cfg, &seeds[..batch]).unwrap();
                        assert_eq!(lanes.len(), batch);
                        for (l, &seed) in seeds[..batch].iter().enumerate() {
                            let mut scalar_cfg = cfg.clone();
                            scalar_cfg.seed = seed;
                            let scalar = run_frames(&plan, &scalar_cfg).unwrap();
                            assert_eq!(
                                lanes[l], scalar,
                                "lane {l} seed {seed} mac {mac:?} traffic {traffic:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lane_batches_reject_ineligible_configurations() {
        let p = plan(&[0, 1, 2], 3);
        let cfg = config(10, KernelTraffic::Periodic { period: 2 }, 0);
        assert!(run_frames_lanes(&p, &cfg, &[]).is_err());
        assert!(run_frames_lanes(&p, &cfg, &vec![1u64; 65]).is_err());
        // Bernoulli traffic is lane-eligible now that backlog counters are
        // bit-planed; pre-compiled traces (both streams) still are not.
        let bernoulli_cfg = config(10, KernelTraffic::Bernoulli { p: 0.5 }, 0);
        assert_eq!(
            run_frames_lanes(&p, &bernoulli_cfg, &[1, 2]).unwrap().len(),
            2
        );
        let traffic_trace = TrafficTrace::bernoulli(&p, 1, 0.5, 10).unwrap();
        let traced_cfg = config(10, KernelTraffic::Trace(Arc::new(traffic_trace)), 0);
        assert!(run_frames_lanes(&p, &traced_cfg, &[1, 2]).is_err());
        let mut traced_mac_cfg = cfg.clone();
        let trace = TrafficTrace::aloha_decisions(&p, 1, 0.5, 10).unwrap();
        traced_mac_cfg.mac = KernelMac::AlohaTrace(Arc::new(trace));
        assert!(run_frames_lanes(&p, &traced_mac_cfg, &[1, 2]).is_err());
        let zero_period = config(10, KernelTraffic::Periodic { period: 0 }, 0);
        assert!(run_frames_lanes(&p, &zero_period, &[1]).is_err());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let frames = FrameSchedule::from_assignment(&[0, 1], 2).unwrap();
        assert!(matches!(
            FramePlan::new(&frames, &line3()),
            Err(EngineError::NodeCountMismatch { .. })
        ));
        let p = plan(&[0, 1, 2], 3);
        for bad in [
            KernelTraffic::Periodic { period: 0 },
            KernelTraffic::Staggered { period: 0 },
            KernelTraffic::Bernoulli { p: 1.5 },
        ] {
            assert!(matches!(
                run_frames(&p, &config(1, bad, 0)),
                Err(EngineError::InvalidKernelConfig(_))
            ));
        }
        let mut cfg = config(1, KernelTraffic::Periodic { period: 1 }, 0);
        cfg.mac = KernelMac::Aloha { p: -0.1 };
        assert!(matches!(
            run_frames(&p, &cfg),
            Err(EngineError::InvalidKernelConfig(_))
        ));
        // Undersized traces are rejected.
        let trace = TrafficTrace::bernoulli(&p, 1, 0.5, 10).unwrap();
        assert!(matches!(
            run_frames(&p, &config(20, KernelTraffic::Trace(Arc::new(trace)), 0)),
            Err(EngineError::InvalidKernelConfig(_))
        ));
        assert!(TrafficTrace::bernoulli(&p, 1, 7.0, 10).is_err());
        // Undersized MAC decision traces are rejected too.
        let mac_trace = TrafficTrace::aloha_decisions(&p, 1, 0.5, 10).unwrap();
        let mut cfg = config(20, KernelTraffic::Periodic { period: 1 }, 0);
        cfg.mac = KernelMac::AlohaTrace(Arc::new(mac_trace));
        assert!(matches!(
            run_frames(&p, &cfg),
            Err(EngineError::InvalidKernelConfig(_))
        ));
        assert!(TrafficTrace::aloha_decisions(&p, 1, 7.0, 10).is_err());
    }
}
