//! Sharded, single-build caches of compiled artifacts.
//!
//! Simulation sweeps and benchmark scenarios evaluate the same handful of
//! neighbourhoods, networks and schedules over and over; compiling an artifact
//! (tiling search + table construction, or frame-plan fusion) is many orders of
//! magnitude more expensive than a query, so the caches make repeated scenarios
//! pay it once. Both public caches are instances of one generic sharded core:
//!
//! * [`ScheduleCache`] — neighbourhood shape → compiled Theorem 1 schedule;
//! * [`PlanCache`] — (slot assignment, interference adjacency) → fused
//!   [`FramePlan`], content-addressed by 64-bit fingerprints so lookups never
//!   clone the assignment or the adjacency.
//!
//! Entries are sharded across several mutex-protected maps so concurrent
//! scenario runners do not serialize on a single lock, and values are `Arc`s so
//! hits share one table. Builds are **single-flight**: the first thread to miss
//! a key claims a per-key slot and builds while holding only that slot's lock,
//! so concurrent misses on the *same* key wait for the one build instead of
//! duplicating it, and lookups of *other* keys are never blocked behind a
//! compilation.

use crate::compiled::CompiledSchedule;
use crate::error::{EngineError, Result};
use crate::frames::{fingerprint_words, FramePlan, FrameSchedule, InterferenceCsr};
use latsched_core::theorem1;
use latsched_lattice::Point;
use latsched_tiling::{find_tiling, Prototile};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The default shard count; a small power of two comfortably above the number of
/// concurrent scenario runners.
const DEFAULT_SHARDS: usize = 16;

/// A per-key build slot: holds the built value once exactly one builder has
/// produced it; racers block on the slot's mutex for the duration of the build.
type Slot<V> = Mutex<Option<Arc<V>>>;

/// One mutex-protected shard of the key → build-slot map.
type Shard<K, V> = Mutex<HashMap<K, Arc<Slot<V>>>>;

/// The generic sharded single-flight cache behind [`ScheduleCache`] and
/// [`PlanCache`].
struct Sharded<K, V> {
    shards: Box<[Shard<K, V>]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Clone + Eq + Hash, V> Sharded<K, V> {
    fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Sharded {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// The value under `key`, building it with `build` on the first lookup.
    /// Exactly one caller builds per key (single-flight); a failed build
    /// removes the key so later lookups retry.
    fn get_or_build(&self, key: K, build: impl FnOnce() -> Result<V>) -> Result<Arc<V>> {
        let shard = &self.shards[self.shard_of(&key)];
        let (slot, claimed) = {
            let mut guard = shard.lock().expect("cache shard poisoned");
            match guard.get(&key) {
                Some(slot) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    (Arc::clone(slot), false)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let slot = Arc::new(Mutex::new(None));
                    guard.insert(key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        // Recover a poisoned slot rather than propagating: a build that
        // panicked left the slot value `None`, which is a consistent state —
        // this lookup simply rebuilds, instead of every future lookup of the
        // key panicking with an unrelated poisoning error.
        let mut value = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(built) = value.as_ref() {
            return Ok(Arc::clone(built));
        }
        // Either we claimed the slot, or the claimant's build failed and was
        // evicted while we waited; build here (shard lock not held, so other
        // keys proceed). Note that a waiter rebuilding after a failed claimant
        // was counted as a hit; the counters are exact except under build
        // failures, where they may classify one rebuild per waiter as a hit.
        match build() {
            Ok(built) => {
                let built = Arc::new(built);
                *value = Some(Arc::clone(&built));
                if !claimed {
                    // The failed claimant evicted the key; re-insert our slot
                    // so the rebuilt value is reachable by later lookups. If a
                    // fresh claimant raced in first, keep theirs — it will
                    // build once and converge.
                    shard
                        .lock()
                        .expect("cache shard poisoned")
                        .entry(key)
                        .or_insert_with(|| Arc::clone(&slot));
                }
                Ok(built)
            }
            Err(err) => {
                if claimed {
                    shard.lock().expect("cache shard poisoned").remove(&key);
                }
                Err(err)
            }
        }
    }

    fn contains(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)]
            .lock()
            .expect("cache shard poisoned")
            .contains_key(key)
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A sharded, thread-safe cache from neighbourhood shapes to their compiled
/// Theorem 1 schedules.
///
/// # Examples
///
/// ```
/// use latsched_engine::ScheduleCache;
/// use latsched_tiling::shapes;
///
/// let cache = ScheduleCache::new();
/// let first = cache.get_or_compile(&shapes::moore())?;
/// let again = cache.get_or_compile(&shapes::moore())?;
/// assert_eq!(first.num_slots(), 9);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// # Ok::<(), latsched_engine::EngineError>(())
/// ```
pub struct ScheduleCache {
    inner: Sharded<Vec<Point>, CompiledSchedule>,
}

impl ScheduleCache {
    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        ScheduleCache::with_shards(DEFAULT_SHARDS)
    }

    /// An empty cache with an explicit shard count (at least 1).
    pub fn with_shards(shards: usize) -> Self {
        ScheduleCache {
            inner: Sharded::with_shards(shards),
        }
    }

    /// The compiled Theorem 1 schedule for the given neighbourhood shape,
    /// compiling and inserting it on first use. Concurrent misses on the same
    /// shape wait for a single compilation (single-flight) instead of
    /// duplicating it; lookups of other shapes are never blocked behind a
    /// compilation.
    ///
    /// # Errors
    ///
    /// * [`EngineError::NotSchedulable`] if the shape does not tile the lattice;
    /// * compilation errors from [`CompiledSchedule::compile`].
    pub fn get_or_compile(&self, shape: &Prototile) -> Result<Arc<CompiledSchedule>> {
        let key = shape.to_points();
        let shape = shape.clone();
        self.inner.get_or_build(key, move || compile_shape(&shape))
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Number of lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Drops every cached schedule (counters are kept).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

impl Default for ScheduleCache {
    fn default() -> Self {
        ScheduleCache::new()
    }
}

impl std::fmt::Debug for ScheduleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// The content-addressed key of a cached frame plan: fingerprints of the slot
/// assignment and of the interference adjacency, plus the exact sizes as a
/// safety margin. Equal inputs always produce equal keys; distinct inputs
/// collide with probability `~2^-128`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct PlanKey {
    assignment: u64,
    adjacency: u64,
    nodes: u64,
    period: u64,
}

/// A sharded, thread-safe cache of fused [`FramePlan`]s, keyed by the content
/// of the (slot assignment, interference adjacency) pair they were built from.
///
/// Building a plan costs a few milliseconds on large networks — several times
/// the frame kernel's own run time — so sweeps that revisit a (schedule,
/// network) pair pay the build once and replay the shared plan from then on.
///
/// # Examples
///
/// ```
/// use latsched_engine::{InterferenceCsr, PlanCache};
///
/// let cache = PlanCache::new();
/// let adjacency = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]])?;
/// let first = cache.get_or_build(&[0, 1, 2], 3, &adjacency)?;
/// let again = cache.get_or_build(&[0, 1, 2], 3, &adjacency)?;
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), latsched_engine::EngineError>(())
/// ```
pub struct PlanCache {
    inner: Sharded<PlanKey, FramePlan>,
    max_entries: usize,
}

/// Default entry bound of a [`PlanCache`]: plans are multi-megabyte on large
/// networks, so the cache resets wholesale once this many distinct plans have
/// accumulated (content-addressed entries are cheap to rebuild); this bounds
/// the process-wide default cache under long-lived, many-network workloads.
const DEFAULT_MAX_PLANS: usize = 256;

impl PlanCache {
    /// An empty cache with the default shard count and entry bound.
    pub fn new() -> Self {
        PlanCache::with_shards(DEFAULT_SHARDS)
    }

    /// An empty cache with an explicit shard count (at least 1) and the
    /// default entry bound.
    pub fn with_shards(shards: usize) -> Self {
        PlanCache {
            inner: Sharded::with_shards(shards),
            max_entries: DEFAULT_MAX_PLANS,
        }
    }

    /// Sets the maximum number of cached plans (at least 1); inserting beyond
    /// it resets the cache wholesale.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries.max(1);
        self
    }

    /// The fused plan of the given per-node slot assignment (with temporal
    /// period `period`) over the given interference adjacency, building and
    /// inserting it on first use. Concurrent misses on the same key wait for a
    /// single build.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameSchedule::from_assignment`] and [`FramePlan::new`]
    /// errors (size limits, node-count mismatches).
    pub fn get_or_build(
        &self,
        slots: &[usize],
        period: usize,
        adjacency: &InterferenceCsr,
    ) -> Result<Arc<FramePlan>> {
        let key = PlanKey {
            assignment: fingerprint_words(period as u64, slots.iter().map(|&s| s as u64)),
            adjacency: adjacency.fingerprint(),
            nodes: slots.len() as u64,
            period: period as u64,
        };
        // Bound the cache: a new key arriving at capacity resets it wholesale
        // rather than tracking recency — entries are content-addressed and
        // rebuildable, and sweeps touch far fewer plans than the bound.
        if self.inner.len() >= self.max_entries && !self.inner.contains(&key) {
            self.inner.clear();
        }
        self.inner.get_or_build(key, || {
            let frames = FrameSchedule::from_assignment(slots, period)?;
            FramePlan::new(&frames, adjacency)
        })
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Number of lookups that had to build.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// Compiles the Theorem 1 schedule of a neighbourhood shape from scratch.
///
/// # Errors
///
/// * [`EngineError::NotSchedulable`] if the shape does not tile the lattice;
/// * tiling and compilation errors otherwise.
pub fn compile_shape(shape: &Prototile) -> Result<CompiledSchedule> {
    let tiling =
        find_tiling(shape)?.ok_or_else(|| EngineError::NotSchedulable(shape.to_string()))?;
    let schedule = theorem1::schedule_from_tiling(&tiling);
    CompiledSchedule::compile(&schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use latsched_tiling::{shapes, tetromino};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn hits_share_one_table() {
        let cache = ScheduleCache::new();
        let a = cache.get_or_compile(&shapes::moore()).unwrap();
        let b = cache.get_or_compile(&shapes::moore()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_shapes_get_distinct_entries() {
        let cache = ScheduleCache::with_shards(4);
        let moore = cache.get_or_compile(&shapes::moore()).unwrap();
        let antenna = cache
            .get_or_compile(&shapes::directional_antenna())
            .unwrap();
        assert_eq!(moore.num_slots(), 9);
        assert_eq!(antenna.num_slots(), 8);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn non_tiling_shapes_are_rejected_and_retried() {
        // The U pentomino does not tile the lattice by translations.
        let u = tetromino::u_pentomino();
        let cache = ScheduleCache::new();
        for _ in 0..2 {
            // Failed builds are evicted, so the error is reproducible.
            assert!(matches!(
                cache.get_or_compile(&u),
                Err(EngineError::NotSchedulable(_))
            ));
        }
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = ScheduleCache::new();
        let tables: Vec<Arc<CompiledSchedule>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.get_or_compile(&shapes::moore()).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        for t in &tables {
            assert_eq!(t.num_slots(), 9);
        }
        assert_eq!(cache.hits() + cache.misses(), 8);
        // Single-flight: exactly one lookup may have compiled.
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn zero_shard_request_is_clamped() {
        let cache = ScheduleCache::with_shards(0);
        assert!(cache.get_or_compile(&shapes::moore()).is_ok());
        assert!(PlanCache::with_shards(0)
            .get_or_build(
                &[0],
                1,
                &InterferenceCsr::from_lists::<Vec<usize>>(&[vec![]]).unwrap()
            )
            .is_ok());
    }

    #[test]
    fn generic_cache_builds_each_key_exactly_once_under_contention() {
        // Hammer one key from many scoped threads: the single-flight slot must
        // admit exactly one build, and hit/miss counters must account for every
        // lookup.
        let cache: Sharded<u32, u32> = Sharded::with_shards(4);
        let builds = AtomicUsize::new(0);
        let threads = 16;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let v = cache
                        .get_or_build(7, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so stragglers arrive
                            // mid-build and must wait instead of rebuilding.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(42)
                        })
                        .unwrap();
                    assert_eq!(*v, 42);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-build semantics");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), threads - 1);
    }

    #[test]
    fn plan_cache_hammered_from_scoped_threads_builds_once() {
        let adjacency =
            InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1, 3], vec![2]]).unwrap();
        let cache = PlanCache::new();
        let plans: Vec<Arc<FramePlan>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..12)
                .map(|_| scope.spawn(|| cache.get_or_build(&[0, 1, 2, 0], 3, &adjacency).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1, "single-build semantics");
        assert_eq!(cache.hits(), 11);
        for p in &plans {
            assert!(Arc::ptr_eq(p, &plans[0]), "hits share one plan");
        }
    }

    #[test]
    fn plan_cache_distinguishes_assignments_periods_and_adjacencies() {
        let line = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]]).unwrap();
        let ring = InterferenceCsr::from_lists(&[vec![1, 2], vec![0, 2], vec![0, 1]]).unwrap();
        let cache = PlanCache::new();
        let a = cache.get_or_build(&[0, 1, 2], 3, &line).unwrap();
        let b = cache.get_or_build(&[0, 1, 0], 3, &line).unwrap();
        let c = cache.get_or_build(&[0, 1, 2], 4, &line).unwrap();
        let d = cache.get_or_build(&[0, 1, 2], 3, &ring).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
        assert!(!Arc::ptr_eq(&a, &b) && !Arc::ptr_eq(&a, &c) && !Arc::ptr_eq(&a, &d));
        // And an equal-content adjacency (separate allocation) still hits.
        let line_again = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]]).unwrap();
        let e = cache.get_or_build(&[0, 1, 2], 3, &line_again).unwrap();
        assert!(Arc::ptr_eq(&a, &e));
    }

    #[test]
    fn waiter_rebuild_after_failed_claimant_is_reinserted() {
        // The claimant's build fails (after a delay, so the waiter is already
        // blocked on the slot); the waiter then rebuilds successfully and must
        // re-insert the value so later lookups hit instead of rebuilding.
        let cache: Sharded<u32, u32> = Sharded::with_shards(2);
        let attempts = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let claimant = scope.spawn(|| {
                cache.get_or_build(5, || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Err(EngineError::InvalidSpec("injected failure".into()))
                })
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            let waiter = scope.spawn(|| {
                cache.get_or_build(5, || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    Ok(77)
                })
            });
            assert!(claimant.join().unwrap().is_err());
            assert_eq!(*waiter.join().unwrap().unwrap(), 77);
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
        assert_eq!(cache.len(), 1, "the waiter's rebuild must be reachable");
        // Later lookups hit the re-inserted value without rebuilding.
        let v = cache
            .get_or_build(5, || panic!("must not rebuild a cached key"))
            .unwrap();
        assert_eq!(*v, 77);
    }

    #[test]
    fn plan_cache_entry_bound_resets_wholesale() {
        let adjacency = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]]).unwrap();
        let cache = PlanCache::new().with_max_entries(2);
        cache.get_or_build(&[0, 1, 2], 3, &adjacency).unwrap();
        cache.get_or_build(&[0, 1, 0], 3, &adjacency).unwrap();
        assert_eq!(cache.len(), 2);
        // A known key at capacity still hits without clearing.
        cache.get_or_build(&[0, 1, 2], 3, &adjacency).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 1);
        // A new key at capacity resets the cache, then inserts.
        cache.get_or_build(&[2, 1, 0], 3, &adjacency).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn plan_cache_propagates_build_errors() {
        let line = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]]).unwrap();
        let cache = PlanCache::new();
        // Assignment length mismatching the adjacency fails FramePlan::new.
        assert!(matches!(
            cache.get_or_build(&[0, 1], 2, &line),
            Err(EngineError::NodeCountMismatch { .. })
        ));
        assert!(cache.is_empty(), "failed builds are evicted");
    }
}
