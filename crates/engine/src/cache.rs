//! The typed tiers of the engine's artifact pipeline.
//!
//! Simulation sweeps and benchmark scenarios evaluate the same handful of
//! neighbourhoods, networks, schedules and traffic draws over and over;
//! compiling an artifact (tiling search + table construction, frame-plan
//! fusion, or `n × slots` counter draws) is many orders of magnitude more
//! expensive than a query, so the tiers make repeated scenarios pay it once.
//! All five are thin key-derivation wrappers over one generic
//! [`ArtifactStore`] (sharded, single-flight, bounded — see
//! [`crate::store`]):
//!
//! * [`ScheduleCache`] — neighbourhood shape → compiled Theorem 1 schedule;
//! * [`PlanCache`] — (slot assignment, interference adjacency) → fused
//!   [`FramePlan`], content-addressed by 64-bit fingerprints so lookups never
//!   clone the assignment or the adjacency;
//! * [`AdjacencyCache`] — (window region, shape) → the window's interference
//!   adjacency ([`InterferenceCsr`]), content-addressed by region and shape
//!   fingerprints, so warm sweeps skip the O(window × shape) neighbour walk;
//! * [`TraceCache`] — (plan fingerprint, seed, load, slots) → compiled
//!   [`TrafficTrace`], so repeated sweeps, the retry axis of a grid and the
//!   CI gate's samples never rebuild a trace;
//! * [`SearchCache`] — (scenario fingerprint, objective fingerprint) → ranked
//!   [`SearchOutcome`], so a repeated schedule search resolves from the cache
//!   without enumerating, compiling or simulating a single candidate.
//!
//! The tiers chain: a schedule compiles once per neighbourhood shape, feeds
//! any number of plans (one per deployment window's adjacency), and each plan
//! feeds any number of traces (one per `(seed, load, slots)` tuple).
//! Downstream keys embed the upstream artifact's content fingerprint, so the
//! chain stays correct without identity or lifetime coupling between the
//! tiers.

use crate::compiled::CompiledSchedule;
use crate::error::{EngineError, Result};
use crate::frames::{fingerprint_words, FramePlan, FrameSchedule, InterferenceCsr};
use crate::search::SearchOutcome;
use crate::simkernel::TrafficTrace;
use crate::store::{ArtifactStore, StoreStats};
use crate::telemetry::{span, telemetry, CacheTier, Stage};
use latsched_core::theorem1;
use latsched_lattice::{BoxRegion, Point};
use latsched_tiling::{find_tiling, Prototile};
use std::sync::Arc;

/// Folds one tier lookup outcome into the telemetry registry (a no-op while
/// telemetry is disabled).
fn note_lookup(tier: CacheTier, hit: bool) {
    telemetry().count(tier.counter(hit), 1);
}

/// A sharded, thread-safe cache from neighbourhood shapes to their compiled
/// Theorem 1 schedules.
///
/// # Examples
///
/// ```
/// use latsched_engine::ScheduleCache;
/// use latsched_tiling::shapes;
///
/// let cache = ScheduleCache::new();
/// let first = cache.get_or_compile(&shapes::moore())?;
/// let again = cache.get_or_compile(&shapes::moore())?;
/// assert_eq!(first.num_slots(), 9);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// # Ok::<(), latsched_engine::EngineError>(())
/// ```
pub struct ScheduleCache {
    inner: ArtifactStore<Vec<Point>, CompiledSchedule>,
}

impl ScheduleCache {
    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        ScheduleCache {
            inner: ArtifactStore::new(),
        }
    }

    /// An empty cache with an explicit shard count (at least 1).
    pub fn with_shards(shards: usize) -> Self {
        ScheduleCache {
            inner: ArtifactStore::with_shards(shards),
        }
    }

    /// The compiled Theorem 1 schedule for the given neighbourhood shape,
    /// compiling and inserting it on first use. Concurrent misses on the same
    /// shape wait for a single compilation (single-flight) instead of
    /// duplicating it; lookups of other shapes are never blocked behind a
    /// compilation.
    ///
    /// # Errors
    ///
    /// * [`EngineError::NotSchedulable`] if the shape does not tile the lattice;
    /// * compilation errors from [`CompiledSchedule::compile`].
    pub fn get_or_compile(&self, shape: &Prototile) -> Result<Arc<CompiledSchedule>> {
        self.get_or_compile_tracked(shape).map(|(v, _)| v)
    }

    /// [`ScheduleCache::get_or_compile`], also reporting whether this lookup
    /// hit the cache.
    ///
    /// # Errors
    ///
    /// As for [`ScheduleCache::get_or_compile`].
    pub fn get_or_compile_tracked(
        &self,
        shape: &Prototile,
    ) -> Result<(Arc<CompiledSchedule>, bool)> {
        let key = shape.to_points();
        let shape = shape.clone();
        let result = self
            .inner
            .get_or_build_tracked(key, move || compile_shape(&shape));
        if let Ok((_, hit)) = result {
            note_lookup(CacheTier::Schedules, hit);
        }
        result
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Number of lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// A point-in-time hit/miss/entry snapshot.
    pub fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    /// Drops every cached schedule (counters are kept).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

impl Default for ScheduleCache {
    fn default() -> Self {
        ScheduleCache::new()
    }
}

impl std::fmt::Debug for ScheduleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// The content-addressed key of a cached frame plan: fingerprints of the slot
/// assignment and of the interference adjacency, plus the exact sizes as a
/// safety margin. Equal inputs always produce equal keys; distinct inputs
/// collide with probability `~2^-128`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct PlanKey {
    assignment: u64,
    adjacency: u64,
    nodes: u64,
    period: u64,
}

/// A sharded, thread-safe cache of fused [`FramePlan`]s, keyed by the content
/// of the (slot assignment, interference adjacency) pair they were built from.
///
/// Building a plan costs a few milliseconds on large networks — several times
/// the frame kernel's own run time — so sweeps that revisit a (schedule,
/// network) pair pay the build once and replay the shared plan from then on.
///
/// # Examples
///
/// ```
/// use latsched_engine::{InterferenceCsr, PlanCache};
///
/// let cache = PlanCache::new();
/// let adjacency = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]])?;
/// let first = cache.get_or_build(&[0, 1, 2], 3, &adjacency)?;
/// let again = cache.get_or_build(&[0, 1, 2], 3, &adjacency)?;
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), latsched_engine::EngineError>(())
/// ```
pub struct PlanCache {
    inner: ArtifactStore<PlanKey, FramePlan>,
}

/// Default entry bound of a [`PlanCache`]: plans are multi-megabyte on large
/// networks, so the cache resets wholesale once this many distinct plans have
/// accumulated (content-addressed entries are cheap to rebuild); this bounds
/// the process-wide default cache under long-lived, many-network workloads.
const DEFAULT_MAX_PLANS: usize = 256;

impl PlanCache {
    /// An empty cache with the default shard count and entry bound.
    pub fn new() -> Self {
        PlanCache::with_shards(crate::store::DEFAULT_SHARDS)
    }

    /// An empty cache with an explicit shard count (at least 1) and the
    /// default entry bound.
    pub fn with_shards(shards: usize) -> Self {
        PlanCache {
            inner: ArtifactStore::with_shards(shards).with_max_entries(DEFAULT_MAX_PLANS),
        }
    }

    /// Sets the maximum number of cached plans (at least 1); inserting beyond
    /// it resets the cache wholesale.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.inner = std::mem::take(&mut self.inner).with_max_entries(max_entries);
        self
    }

    /// The fused plan of the given per-node slot assignment (with temporal
    /// period `period`) over the given interference adjacency, building and
    /// inserting it on first use. Concurrent misses on the same key wait for a
    /// single build.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameSchedule::from_assignment`] and [`FramePlan::new`]
    /// errors (size limits, node-count mismatches).
    pub fn get_or_build(
        &self,
        slots: &[usize],
        period: usize,
        adjacency: &InterferenceCsr,
    ) -> Result<Arc<FramePlan>> {
        self.get_or_build_tracked(slots, period, adjacency)
            .map(|(v, _)| v)
    }

    /// [`PlanCache::get_or_build`], also reporting whether this lookup hit
    /// the cache.
    ///
    /// # Errors
    ///
    /// As for [`PlanCache::get_or_build`].
    pub fn get_or_build_tracked(
        &self,
        slots: &[usize],
        period: usize,
        adjacency: &InterferenceCsr,
    ) -> Result<(Arc<FramePlan>, bool)> {
        let key = PlanKey {
            assignment: fingerprint_words(period as u64, slots.iter().map(|&s| s as u64)),
            adjacency: adjacency.fingerprint(),
            nodes: slots.len() as u64,
            period: period as u64,
        };
        let result = self.inner.get_or_build_tracked(key, || {
            let frames = FrameSchedule::from_assignment(slots, period)?;
            FramePlan::new(&frames, adjacency)
        });
        if let Ok((_, hit)) = result {
            note_lookup(CacheTier::Plans, hit);
        }
        result
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Number of lookups that had to build.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// A point-in-time hit/miss/entry snapshot.
    pub fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// The content-addressed key of a cached traffic trace: the source plan's
/// content fingerprint plus the draw coordinates. Two plans with equal
/// fingerprints produce identical traces by construction (draws are keyed by
/// the plan's original-id permutation, which the fingerprint covers).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TraceKey {
    plan: u64,
    seed: u64,
    p_bits: u64,
    slots: u64,
    nodes: u64,
    /// The counter-RNG stream the trace was drawn on: traffic generation
    /// bitmaps and MAC decision bitmaps of one `(seed, p)` pair share every
    /// other coordinate, so the stream tag keeps them distinct.
    stream: u64,
}

/// Default entry bound of a [`TraceCache`]: traces are the largest artifacts
/// of the pipeline (one bit per `node × slot`), so the default store resets
/// wholesale after this many distinct traces.
const DEFAULT_MAX_TRACES: usize = 64;

/// A sharded, thread-safe cache of compiled [`TrafficTrace`]s, keyed by
/// `(plan fingerprint, seed, load, slots)`.
///
/// A trace bakes every Bernoulli generation draw of one `(seed, p)` pair over
/// a plan's node set into per-slot bitmaps; compiling it costs `n × slots`
/// counter draws — the dominant setup cost of a stochastic sweep. The cache
/// makes repeated sweeps (and the CI perf gate's repeated samples) replay the
/// compiled bitmaps instead of re-drawing them.
///
/// # Examples
///
/// ```
/// use latsched_engine::{FramePlan, FrameSchedule, InterferenceCsr, TraceCache};
///
/// let frames = FrameSchedule::from_assignment(&[0, 1, 2], 3)?;
/// let adjacency = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]])?;
/// let plan = FramePlan::new(&frames, &adjacency)?;
/// let cache = TraceCache::new();
/// let first = cache.get_or_build(&plan, 7, 0.1, 128)?;
/// let again = cache.get_or_build(&plan, 7, 0.1, 128)?;
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), latsched_engine::EngineError>(())
/// ```
pub struct TraceCache {
    inner: ArtifactStore<TraceKey, TrafficTrace>,
}

impl TraceCache {
    /// An empty cache with the default shard count and entry bound.
    pub fn new() -> Self {
        TraceCache::with_shards(crate::store::DEFAULT_SHARDS)
    }

    /// An empty cache with an explicit shard count (at least 1) and the
    /// default entry bound.
    pub fn with_shards(shards: usize) -> Self {
        TraceCache {
            inner: ArtifactStore::with_shards(shards).with_max_entries(DEFAULT_MAX_TRACES),
        }
    }

    /// Sets the maximum number of cached traces (at least 1); inserting beyond
    /// it resets the cache wholesale.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.inner = std::mem::take(&mut self.inner).with_max_entries(max_entries);
        self
    }

    /// The compiled Bernoulli(`p`) trace of `seed`'s traffic stream over
    /// `slots` slots of the plan's node set, building and inserting it on
    /// first use. Concurrent misses on the same key wait for a single build.
    ///
    /// # Errors
    ///
    /// Propagates [`TrafficTrace::bernoulli`] errors (probability range, size
    /// cap).
    pub fn get_or_build(
        &self,
        plan: &FramePlan,
        seed: u64,
        p: f64,
        slots: u64,
    ) -> Result<Arc<TrafficTrace>> {
        self.get_or_build_tracked(plan, seed, p, slots)
            .map(|(v, _)| v)
    }

    /// [`TraceCache::get_or_build`], also reporting whether this lookup hit
    /// the cache.
    ///
    /// # Errors
    ///
    /// As for [`TraceCache::get_or_build`].
    pub fn get_or_build_tracked(
        &self,
        plan: &FramePlan,
        seed: u64,
        p: f64,
        slots: u64,
    ) -> Result<(Arc<TrafficTrace>, bool)> {
        let key = TraceKey {
            plan: plan.fingerprint(),
            seed,
            p_bits: p.to_bits(),
            slots,
            nodes: plan.num_nodes() as u64,
            stream: latsched_lattice::TRAFFIC_STREAM,
        };
        let result = self
            .inner
            .get_or_build_tracked(key, || TrafficTrace::bernoulli(plan, seed, p, slots));
        if let Ok((_, hit)) = result {
            note_lookup(CacheTier::Traces, hit);
        }
        result
    }

    /// The compiled slotted-ALOHA decision bitmap of `seed`'s MAC stream over
    /// `slots` slots of the plan's node set (see
    /// [`TrafficTrace::aloha_decisions`]), building and inserting it on first
    /// use. Keyed separately from traffic traces by the counter-RNG stream
    /// tag, so a sweep can share both artifacts of one `(seed, p)` pair.
    ///
    /// # Errors
    ///
    /// Propagates [`TrafficTrace::aloha_decisions`] errors (probability
    /// range, size cap).
    pub fn get_or_build_mac(
        &self,
        plan: &FramePlan,
        seed: u64,
        p: f64,
        slots: u64,
    ) -> Result<Arc<TrafficTrace>> {
        self.get_or_build_mac_tracked(plan, seed, p, slots)
            .map(|(v, _)| v)
    }

    /// [`TraceCache::get_or_build_mac`], also reporting whether this lookup
    /// hit the cache.
    ///
    /// # Errors
    ///
    /// As for [`TraceCache::get_or_build_mac`].
    pub fn get_or_build_mac_tracked(
        &self,
        plan: &FramePlan,
        seed: u64,
        p: f64,
        slots: u64,
    ) -> Result<(Arc<TrafficTrace>, bool)> {
        let key = TraceKey {
            plan: plan.fingerprint(),
            seed,
            p_bits: p.to_bits(),
            slots,
            nodes: plan.num_nodes() as u64,
            stream: latsched_lattice::MAC_STREAM,
        };
        let result = self
            .inner
            .get_or_build_tracked(key, || TrafficTrace::aloha_decisions(plan, seed, p, slots));
        if let Ok((_, hit)) = result {
            note_lookup(CacheTier::Traces, hit);
        }
        result
    }

    /// Number of cached traces.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Number of lookups that had to build.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// A point-in-time hit/miss/entry snapshot.
    pub fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    /// Drops every cached trace (counters are kept).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache::new()
    }
}

impl std::fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// The content-addressed key of a cached window adjacency: fingerprints of
/// the box region (dimension plus corner coordinates) and of the shape's
/// offset set, with the point count as a safety margin.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct AdjacencyKey {
    region: u64,
    shape: u64,
    points: u64,
}

/// Default entry bound of an [`AdjacencyCache`]: adjacencies are O(window ×
/// shape) CSR structures — multi-megabyte on large windows — so the default
/// store resets wholesale after this many distinct (region, shape) pairs.
const DEFAULT_MAX_ADJACENCIES: usize = 64;

/// A sharded, thread-safe cache of window interference adjacencies, keyed by
/// the content of the (box region, neighbourhood shape) pair.
///
/// Building an adjacency walks every window point against every shape offset
/// — about a millisecond on the 64×64 acceptance window, which used to be the
/// whole setup phase of a warm sweep. The cache makes repeated sweeps (and
/// repeated benchmark samples) over the same windows reuse the CSR instead.
///
/// # Examples
///
/// ```
/// use latsched_engine::AdjacencyCache;
/// use latsched_lattice::BoxRegion;
/// use latsched_tiling::shapes;
///
/// let cache = AdjacencyCache::new();
/// let window = BoxRegion::square_window(2, 8)?;
/// let first = cache.get_or_build(&window, &shapes::moore())?;
/// let again = cache.get_or_build(&window, &shapes::moore())?;
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct AdjacencyCache {
    inner: ArtifactStore<AdjacencyKey, InterferenceCsr>,
}

impl AdjacencyCache {
    /// An empty cache with the default shard count and entry bound.
    pub fn new() -> Self {
        AdjacencyCache::with_shards(crate::store::DEFAULT_SHARDS)
    }

    /// An empty cache with an explicit shard count (at least 1) and the
    /// default entry bound.
    pub fn with_shards(shards: usize) -> Self {
        AdjacencyCache {
            inner: ArtifactStore::with_shards(shards).with_max_entries(DEFAULT_MAX_ADJACENCIES),
        }
    }

    /// Sets the maximum number of cached adjacencies (at least 1); inserting
    /// beyond it resets the cache wholesale.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.inner = std::mem::take(&mut self.inner).with_max_entries(max_entries);
        self
    }

    /// The interference adjacency of all lattice sensors in `region` under
    /// the homogeneous neighbourhood `shape` (see
    /// [`crate::sweep::grid_adjacency`]), building and inserting it on first
    /// use. Concurrent misses on the same key wait for a single build.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::sweep::grid_adjacency`] errors (window size
    /// limits).
    pub fn get_or_build(
        &self,
        region: &BoxRegion,
        shape: &Prototile,
    ) -> Result<Arc<InterferenceCsr>> {
        self.get_or_build_tracked(region, shape).map(|(v, _)| v)
    }

    /// [`AdjacencyCache::get_or_build`], also reporting whether this lookup
    /// hit the cache.
    ///
    /// # Errors
    ///
    /// As for [`AdjacencyCache::get_or_build`].
    pub fn get_or_build_tracked(
        &self,
        region: &BoxRegion,
        shape: &Prototile,
    ) -> Result<(Arc<InterferenceCsr>, bool)> {
        let key = AdjacencyKey {
            region: fingerprint_words(
                region.dim() as u64,
                region
                    .min()
                    .coords()
                    .iter()
                    .chain(region.max().coords())
                    .map(|&c| c as u64),
            ),
            shape: fingerprint_words(
                shape.len() as u64,
                shape
                    .iter()
                    .flat_map(|p| p.coords().iter().map(|&c| c as u64)),
            ),
            points: region.len(),
        };
        let result = self
            .inner
            .get_or_build_tracked(key, || crate::sweep::grid_adjacency(region, shape));
        if let Ok((_, hit)) = result {
            note_lookup(CacheTier::Adjacencies, hit);
        }
        result
    }

    /// Number of cached adjacencies.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Number of lookups that had to build.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// A point-in-time hit/miss/entry snapshot.
    pub fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    /// Drops every cached adjacency (counters are kept).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

impl Default for AdjacencyCache {
    fn default() -> Self {
        AdjacencyCache::new()
    }
}

impl std::fmt::Debug for AdjacencyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdjacencyCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// The content-addressed key of a cached search outcome: the scenario's
/// content fingerprint (shape, window, slots, traffic, seeds, retries) and
/// the objective fingerprint (objective, families, budget, top) — see
/// [`crate::search`], which derives both.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct SearchKey {
    scenario: u64,
    objective: u64,
}

/// Default entry bound of a [`SearchCache`]: outcomes hold per-candidate
/// streaming folds (a few kilobytes each), so the default store resets
/// wholesale after this many distinct (scenario, objective) pairs.
const DEFAULT_MAX_SEARCHES: usize = 64;

/// A sharded, thread-safe cache of ranked [`SearchOutcome`]s, keyed by
/// `(scenario fingerprint, objective fingerprint)`.
///
/// A schedule search is the most expensive stage of the pipeline — it
/// enumerates candidate schedules from the lattice-tiling and graph-coloring
/// families, compiles each one and simulates the whole run grid over it — so
/// a warm hit here skips candidate evaluation entirely: repeated searches of
/// the same scenario under the same objective resolve without touching the
/// schedule, plan, adjacency or trace tiers at all.
pub struct SearchCache {
    inner: ArtifactStore<SearchKey, SearchOutcome>,
}

impl SearchCache {
    /// An empty cache with the default shard count and entry bound.
    pub fn new() -> Self {
        SearchCache::with_shards(crate::store::DEFAULT_SHARDS)
    }

    /// An empty cache with an explicit shard count (at least 1) and the
    /// default entry bound.
    pub fn with_shards(shards: usize) -> Self {
        SearchCache {
            inner: ArtifactStore::with_shards(shards).with_max_entries(DEFAULT_MAX_SEARCHES),
        }
    }

    /// Sets the maximum number of cached outcomes (at least 1); inserting
    /// beyond it resets the cache wholesale.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.inner = std::mem::take(&mut self.inner).with_max_entries(max_entries);
        self
    }

    /// The search outcome of the given `(scenario, objective)` fingerprint
    /// pair, running `build` and inserting its result on first use.
    /// Concurrent misses on the same key wait for a single search.
    ///
    /// # Errors
    ///
    /// Propagates `build` errors; failed searches are evicted, so retries
    /// rebuild.
    pub fn get_or_build(
        &self,
        scenario: u64,
        objective: u64,
        build: impl FnOnce() -> Result<SearchOutcome>,
    ) -> Result<Arc<SearchOutcome>> {
        self.get_or_build_tracked(scenario, objective, build)
            .map(|(v, _)| v)
    }

    /// [`SearchCache::get_or_build`], also reporting whether this lookup hit
    /// the cache.
    ///
    /// # Errors
    ///
    /// As for [`SearchCache::get_or_build`].
    pub fn get_or_build_tracked(
        &self,
        scenario: u64,
        objective: u64,
        build: impl FnOnce() -> Result<SearchOutcome>,
    ) -> Result<(Arc<SearchOutcome>, bool)> {
        let key = SearchKey {
            scenario,
            objective,
        };
        let result = self.inner.get_or_build_tracked(key, build);
        if let Ok((_, hit)) = result {
            note_lookup(CacheTier::Searches, hit);
        }
        result
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Number of lookups that had to search.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// A point-in-time hit/miss/entry snapshot.
    pub fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    /// Drops every cached outcome (counters are kept).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

impl Default for SearchCache {
    fn default() -> Self {
        SearchCache::new()
    }
}

impl std::fmt::Debug for SearchCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// Compiles the Theorem 1 schedule of a neighbourhood shape from scratch.
///
/// # Errors
///
/// * [`EngineError::NotSchedulable`] if the shape does not tile the lattice;
/// * tiling and compilation errors otherwise.
pub fn compile_shape(shape: &Prototile) -> Result<CompiledSchedule> {
    let _span = span(Stage::ScheduleCompile);
    let tiling =
        find_tiling(shape)?.ok_or_else(|| EngineError::NotSchedulable(shape.to_string()))?;
    let schedule = theorem1::schedule_from_tiling(&tiling);
    CompiledSchedule::compile(&schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::FrameSchedule;
    use latsched_tiling::{shapes, tetromino};

    #[test]
    fn hits_share_one_table() {
        let cache = ScheduleCache::new();
        let a = cache.get_or_compile(&shapes::moore()).unwrap();
        let b = cache.get_or_compile(&shapes::moore()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn distinct_shapes_get_distinct_entries() {
        let cache = ScheduleCache::with_shards(4);
        let moore = cache.get_or_compile(&shapes::moore()).unwrap();
        let antenna = cache
            .get_or_compile(&shapes::directional_antenna())
            .unwrap();
        assert_eq!(moore.num_slots(), 9);
        assert_eq!(antenna.num_slots(), 8);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn non_tiling_shapes_are_rejected_and_retried() {
        // The U pentomino does not tile the lattice by translations.
        let u = tetromino::u_pentomino();
        let cache = ScheduleCache::new();
        for _ in 0..2 {
            // Failed builds are evicted, so the error is reproducible.
            assert!(matches!(
                cache.get_or_compile(&u),
                Err(EngineError::NotSchedulable(_))
            ));
        }
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = ScheduleCache::new();
        let tables: Vec<Arc<CompiledSchedule>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.get_or_compile(&shapes::moore()).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        for t in &tables {
            assert_eq!(t.num_slots(), 9);
        }
        assert_eq!(cache.hits() + cache.misses(), 8);
        // Single-flight: exactly one lookup may have compiled.
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn zero_shard_request_is_clamped() {
        let cache = ScheduleCache::with_shards(0);
        assert!(cache.get_or_compile(&shapes::moore()).is_ok());
        assert!(PlanCache::with_shards(0)
            .get_or_build(
                &[0],
                1,
                &InterferenceCsr::from_lists::<Vec<usize>>(&[vec![]]).unwrap()
            )
            .is_ok());
    }

    #[test]
    fn plan_cache_hammered_from_scoped_threads_builds_once() {
        let adjacency =
            InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1, 3], vec![2]]).unwrap();
        let cache = PlanCache::new();
        let plans: Vec<Arc<FramePlan>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..12)
                .map(|_| scope.spawn(|| cache.get_or_build(&[0, 1, 2, 0], 3, &adjacency).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1, "single-build semantics");
        assert_eq!(cache.hits(), 11);
        for p in &plans {
            assert!(Arc::ptr_eq(p, &plans[0]), "hits share one plan");
        }
    }

    #[test]
    fn plan_cache_distinguishes_assignments_periods_and_adjacencies() {
        let line = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]]).unwrap();
        let ring = InterferenceCsr::from_lists(&[vec![1, 2], vec![0, 2], vec![0, 1]]).unwrap();
        let cache = PlanCache::new();
        let a = cache.get_or_build(&[0, 1, 2], 3, &line).unwrap();
        let b = cache.get_or_build(&[0, 1, 0], 3, &line).unwrap();
        let c = cache.get_or_build(&[0, 1, 2], 4, &line).unwrap();
        let d = cache.get_or_build(&[0, 1, 2], 3, &ring).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
        assert!(!Arc::ptr_eq(&a, &b) && !Arc::ptr_eq(&a, &c) && !Arc::ptr_eq(&a, &d));
        // And an equal-content adjacency (separate allocation) still hits.
        let line_again = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]]).unwrap();
        let e = cache.get_or_build(&[0, 1, 2], 3, &line_again).unwrap();
        assert!(Arc::ptr_eq(&a, &e));
    }

    #[test]
    fn plan_cache_entry_bound_resets_wholesale() {
        let adjacency = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]]).unwrap();
        let cache = PlanCache::new().with_max_entries(2);
        cache.get_or_build(&[0, 1, 2], 3, &adjacency).unwrap();
        cache.get_or_build(&[0, 1, 0], 3, &adjacency).unwrap();
        assert_eq!(cache.len(), 2);
        // A known key at capacity still hits without clearing.
        cache.get_or_build(&[0, 1, 2], 3, &adjacency).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 1);
        // A new key at capacity resets the cache, then inserts.
        cache.get_or_build(&[2, 1, 0], 3, &adjacency).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn plan_cache_propagates_build_errors() {
        let line = InterferenceCsr::from_lists(&[vec![1], vec![0, 2], vec![1]]).unwrap();
        let cache = PlanCache::new();
        // Assignment length mismatching the adjacency fails FramePlan::new.
        assert!(matches!(
            cache.get_or_build(&[0, 1], 2, &line),
            Err(EngineError::NodeCountMismatch { .. })
        ));
        assert!(cache.is_empty(), "failed builds are evicted");
    }

    fn line_plan(slots: &[usize], period: usize) -> FramePlan {
        let n = slots.len();
        let lists: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                let mut l = Vec::new();
                if v > 0 {
                    l.push(v - 1);
                }
                if v + 1 < n {
                    l.push(v + 1);
                }
                l
            })
            .collect();
        let adjacency = InterferenceCsr::from_lists(&lists).unwrap();
        let frames = FrameSchedule::from_assignment(slots, period).unwrap();
        FramePlan::new(&frames, &adjacency).unwrap()
    }

    #[test]
    fn trace_cache_hits_on_equal_coordinates_and_misses_otherwise() {
        let plan = line_plan(&[0, 1, 2], 3);
        let cache = TraceCache::new();
        let a = cache.get_or_build(&plan, 1, 0.2, 64).unwrap();
        let b = cache.get_or_build(&plan, 1, 0.2, 64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Every coordinate of the key separates entries.
        cache.get_or_build(&plan, 2, 0.2, 64).unwrap();
        cache.get_or_build(&plan, 1, 0.3, 64).unwrap();
        cache.get_or_build(&plan, 1, 0.2, 65).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn trace_cache_separates_plans_by_content_fingerprint() {
        // Same node count, seed, load and slot count — but different slot
        // assignments, hence different relabellings and different plan
        // fingerprints: the cache must keep two distinct traces, and each must
        // replay its own plan's draw layout.
        let plan_a = line_plan(&[0, 1, 2], 3);
        let plan_b = line_plan(&[2, 1, 0], 3);
        assert_ne!(plan_a.fingerprint(), plan_b.fingerprint());
        let cache = TraceCache::new();
        let a = cache.get_or_build(&plan_a, 1, 0.5, 256).unwrap();
        let b = cache.get_or_build(&plan_b, 1, 0.5, 256).unwrap();
        assert_eq!(cache.len(), 2, "distinct fingerprints, distinct entries");
        assert_eq!(cache.misses(), 2);
        assert!(!Arc::ptr_eq(&a, &b));
        // The traces cover the same original node set, so totals agree even
        // though the relabelled bit layouts differ.
        assert_eq!(a.total_generated(), b.total_generated());
        assert_ne!(*a, *b, "relabelled bit layouts differ");
        // An equal-content plan built separately hits the first entry.
        let plan_a_again = line_plan(&[0, 1, 2], 3);
        let again = cache.get_or_build(&plan_a_again, 1, 0.5, 256).unwrap();
        assert!(Arc::ptr_eq(&a, &again));
    }

    #[test]
    fn trace_cache_entry_bound_resets_wholesale() {
        let plan = line_plan(&[0, 1, 2], 3);
        let cache = TraceCache::new().with_max_entries(2);
        cache.get_or_build(&plan, 1, 0.1, 32).unwrap();
        cache.get_or_build(&plan, 2, 0.1, 32).unwrap();
        assert_eq!(cache.len(), 2);
        cache.get_or_build(&plan, 3, 0.1, 32).unwrap();
        assert_eq!(cache.len(), 1, "new key at capacity resets wholesale");
    }

    #[test]
    fn adjacency_cache_hits_on_equal_content_and_separates_otherwise() {
        let cache = AdjacencyCache::new();
        let window = BoxRegion::square_window(2, 5).unwrap();
        let a = cache.get_or_build(&window, &shapes::moore()).unwrap();
        // An equal-content region built separately still hits.
        let window_again = BoxRegion::square_window(2, 5).unwrap();
        let b = cache.get_or_build(&window_again, &shapes::moore()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Every key coordinate separates entries: region and shape.
        cache
            .get_or_build(&BoxRegion::square_window(2, 6).unwrap(), &shapes::moore())
            .unwrap();
        cache.get_or_build(&window, &shapes::von_neumann()).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        // The cached CSR is the same structure grid_adjacency builds.
        let direct = crate::sweep::grid_adjacency(&window, &shapes::moore()).unwrap();
        assert_eq!(a.fingerprint(), direct.fingerprint());
        assert_eq!(a.num_nodes(), 25);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(AdjacencyCache::default().len(), 0);
        assert!(!format!("{:?}", cache).is_empty());
    }

    #[test]
    fn adjacency_cache_entry_bound_resets_wholesale() {
        let cache = AdjacencyCache::new().with_max_entries(2);
        let shape = shapes::moore();
        for side in [3, 4] {
            cache
                .get_or_build(&BoxRegion::square_window(2, side).unwrap(), &shape)
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        cache
            .get_or_build(&BoxRegion::square_window(2, 5).unwrap(), &shape)
            .unwrap();
        assert_eq!(cache.len(), 1, "new key at capacity resets wholesale");
    }

    #[test]
    fn trace_cache_propagates_build_errors() {
        let plan = line_plan(&[0, 1, 2], 3);
        let cache = TraceCache::new();
        assert!(matches!(
            cache.get_or_build(&plan, 1, 1.5, 32),
            Err(EngineError::InvalidKernelConfig(_))
        ));
        assert!(cache.is_empty(), "failed builds are evicted");
    }
}
