//! A sharded cache of compiled schedules, keyed by neighbourhood shape.
//!
//! Simulation sweeps and benchmark scenarios evaluate the same handful of
//! neighbourhoods over and over; compiling a schedule (tiling search + table
//! construction) is many orders of magnitude more expensive than a query, so the
//! cache makes repeated scenarios pay it once. Entries are sharded across several
//! mutex-protected maps so concurrent scenario runners do not serialize on a
//! single lock, and values are `Arc`s so hits share one table.

use crate::compiled::CompiledSchedule;
use crate::error::{EngineError, Result};
use latsched_core::theorem1;
use latsched_lattice::Point;
use latsched_tiling::{find_tiling, Prototile};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The default shard count; a small power of two comfortably above the number of
/// concurrent scenario runners.
const DEFAULT_SHARDS: usize = 16;

type Shard = Mutex<HashMap<Vec<Point>, Arc<CompiledSchedule>>>;

/// A sharded, thread-safe cache from neighbourhood shapes to their compiled
/// Theorem 1 schedules.
///
/// # Examples
///
/// ```
/// use latsched_engine::ScheduleCache;
/// use latsched_tiling::shapes;
///
/// let cache = ScheduleCache::new();
/// let first = cache.get_or_compile(&shapes::moore())?;
/// let again = cache.get_or_compile(&shapes::moore())?;
/// assert_eq!(first.num_slots(), 9);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// # Ok::<(), latsched_engine::EngineError>(())
/// ```
pub struct ScheduleCache {
    shards: Box<[Shard]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScheduleCache {
    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        ScheduleCache::with_shards(DEFAULT_SHARDS)
    }

    /// An empty cache with an explicit shard count (at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        ScheduleCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The compiled Theorem 1 schedule for the given neighbourhood shape,
    /// compiling and inserting it on first use.
    ///
    /// A miss runs the tiling search, builds the schedule and flattens it while
    /// *not* holding the shard lock, so concurrent lookups of other shapes are
    /// never blocked behind a compilation; two racing misses on the same shape may
    /// both compile, and the first insert wins.
    ///
    /// # Errors
    ///
    /// * [`EngineError::NotSchedulable`] if the shape does not tile the lattice;
    /// * compilation errors from [`CompiledSchedule::compile`].
    pub fn get_or_compile(&self, shape: &Prototile) -> Result<Arc<CompiledSchedule>> {
        let key = shape.to_points();
        let shard = &self.shards[self.shard_of(&key)];
        if let Some(hit) = shard.lock().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(compile_shape(shape)?);
        let mut guard = shard.lock().expect("cache shard poisoned");
        let entry = guard.entry(key).or_insert_with(|| Arc::clone(&compiled));
        Ok(Arc::clone(entry))
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached schedule (counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    fn shard_of(&self, key: &[Point]) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }
}

impl Default for ScheduleCache {
    fn default() -> Self {
        ScheduleCache::new()
    }
}

/// Compiles the Theorem 1 schedule of a neighbourhood shape from scratch.
///
/// # Errors
///
/// * [`EngineError::NotSchedulable`] if the shape does not tile the lattice;
/// * tiling and compilation errors otherwise.
pub fn compile_shape(shape: &Prototile) -> Result<CompiledSchedule> {
    let tiling =
        find_tiling(shape)?.ok_or_else(|| EngineError::NotSchedulable(shape.to_string()))?;
    let schedule = theorem1::schedule_from_tiling(&tiling);
    CompiledSchedule::compile(&schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use latsched_tiling::{shapes, tetromino};

    #[test]
    fn hits_share_one_table() {
        let cache = ScheduleCache::new();
        let a = cache.get_or_compile(&shapes::moore()).unwrap();
        let b = cache.get_or_compile(&shapes::moore()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_shapes_get_distinct_entries() {
        let cache = ScheduleCache::with_shards(4);
        let moore = cache.get_or_compile(&shapes::moore()).unwrap();
        let antenna = cache
            .get_or_compile(&shapes::directional_antenna())
            .unwrap();
        assert_eq!(moore.num_slots(), 9);
        assert_eq!(antenna.num_slots(), 8);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn non_tiling_shapes_are_rejected() {
        // The U pentomino does not tile the lattice by translations.
        let u = tetromino::u_pentomino();
        let cache = ScheduleCache::new();
        assert!(matches!(
            cache.get_or_compile(&u),
            Err(EngineError::NotSchedulable(_))
        ));
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = ScheduleCache::new();
        let tables: Vec<Arc<CompiledSchedule>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.get_or_compile(&shapes::moore()).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        for t in &tables {
            assert_eq!(t.num_slots(), 9);
        }
        assert_eq!(cache.hits() + cache.misses(), 8);
    }

    #[test]
    fn zero_shard_request_is_clamped() {
        let cache = ScheduleCache::with_shards(0);
        assert!(cache.get_or_compile(&shapes::moore()).is_ok());
    }
}
