//! JSON scenario specifications and the scenario runner behind `engine-cli`.
//!
//! A scenario names a neighbourhood shape, a query window and a load profile:
//!
//! ```json
//! {
//!   "name": "moore-512",
//!   "shape": { "kind": "ball", "dim": 2, "radius": 1, "metric": "chebyshev" },
//!   "window": 512,
//!   "repeats": 3
//! }
//! ```
//!
//! Shapes: `{"kind": "ball", dim, radius, metric}` (metrics `chebyshev`,
//! `euclidean`, `manhattan`), `{"kind": "antenna"}` (Figure 3's 8-point
//! directional antenna), `{"kind": "hex7"}` (the 7-point hexagonal one-hop
//! cluster), or `{"kind": "points", "points": [[0,0], [1,0], ...]}`. A spec file
//! holds one scenario object or an array of them. [`run_scenario`] compiles the
//! shape's Theorem 1 schedule through a [`ScheduleCache`], answers every point
//! query of the window `repeats` times, and reports the throughput.

use crate::cache::ScheduleCache;
use crate::error::{EngineError, Result};
use latsched_lattice::{ball_points, BoxRegion, Metric, Point};
use latsched_tiling::{shapes, Prototile};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// The neighbourhood shape of a scenario.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ShapeSpec {
    /// A metric ball around the origin.
    Ball {
        /// Ambient dimension.
        dim: usize,
        /// Ball radius.
        radius: i64,
        /// The metric (Figure 2's neighbourhood families).
        metric: Metric,
    },
    /// Figure 3's 8-point directional antenna neighbourhood.
    Antenna,
    /// The 7-point one-hop cluster of the hexagonal lattice (frequency reuse 7).
    Hex7,
    /// An explicit list of lattice points (must contain the origin).
    Points(Vec<Point>),
}

impl ShapeSpec {
    /// Materializes the prototile.
    ///
    /// # Errors
    ///
    /// Propagates lattice/tiling construction errors (bad radius, missing origin).
    pub fn prototile(&self) -> Result<Prototile> {
        match self {
            ShapeSpec::Ball {
                dim,
                radius,
                metric,
            } => Ok(Prototile::new(ball_points(*dim, *radius, *metric)?)?),
            ShapeSpec::Antenna => Ok(shapes::directional_antenna()),
            ShapeSpec::Hex7 => Ok(shapes::hex7()),
            ShapeSpec::Points(points) => Ok(Prototile::new(points.clone())?),
        }
    }

    /// The ambient dimension of the shape.
    pub fn dim(&self) -> usize {
        match self {
            ShapeSpec::Ball { dim, .. } => *dim,
            ShapeSpec::Antenna | ShapeSpec::Hex7 => 2,
            ShapeSpec::Points(points) => points.first().map_or(2, Point::dim),
        }
    }

    pub(crate) fn from_json(value: &Value) -> Result<Self> {
        let kind = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("shape needs a string field 'kind'"))?;
        match kind {
            "ball" => {
                let dim = get_u64(value, "dim")? as usize;
                let radius = get_u64(value, "radius")? as i64;
                let metric = match value.get("metric").and_then(Value::as_str) {
                    Some("chebyshev") | Some("moore") | None => Metric::Chebyshev,
                    Some("euclidean") => Metric::Euclidean,
                    Some("manhattan") => Metric::Manhattan,
                    Some(other) => {
                        return Err(invalid(&format!("unknown metric '{other}'")));
                    }
                };
                Ok(ShapeSpec::Ball {
                    dim,
                    radius,
                    metric,
                })
            }
            "antenna" => Ok(ShapeSpec::Antenna),
            "hex7" => Ok(ShapeSpec::Hex7),
            "points" => {
                let raw = value
                    .get("points")
                    .and_then(Value::as_array)
                    .ok_or_else(|| invalid("shape kind 'points' needs a 'points' array"))?;
                let mut points = Vec::with_capacity(raw.len());
                for entry in raw {
                    let coords = entry
                        .as_array()
                        .ok_or_else(|| invalid("each point must be a coordinate array"))?
                        .iter()
                        .map(|c| {
                            c.as_i64()
                                .ok_or_else(|| invalid("coordinates must be integers"))
                        })
                        .collect::<Result<Vec<i64>>>()?;
                    points.push(Point::new(coords));
                }
                Ok(ShapeSpec::Points(points))
            }
            other => Err(invalid(&format!("unknown shape kind '{other}'"))),
        }
    }
}

impl fmt::Display for ShapeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeSpec::Ball {
                dim,
                radius,
                metric,
            } => write!(f, "ball(dim={dim}, r={radius}, {metric})"),
            ShapeSpec::Antenna => write!(f, "antenna8"),
            ShapeSpec::Hex7 => write!(f, "hex7"),
            ShapeSpec::Points(points) => write!(f, "points({})", points.len()),
        }
    }
}

/// One scenario: a shape, a square query window and a repeat count.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// The neighbourhood shape.
    pub shape: ShapeSpec,
    /// Side length of the square query window `[0, window)^dim`.
    pub window: i64,
    /// How many times the whole window is evaluated (later passes hit the cache).
    pub repeats: usize,
}

impl Scenario {
    /// Parses one scenario object.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] naming the first malformed field.
    pub fn from_json(value: &Value) -> Result<Self> {
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("unnamed")
            .to_string();
        let shape = ShapeSpec::from_json(
            value
                .get("shape")
                .ok_or_else(|| invalid("scenario needs a 'shape' object"))?,
        )?;
        let window = get_u64(value, "window")? as i64;
        if window <= 0 {
            return Err(invalid("'window' must be positive"));
        }
        let repeats = value
            .get("repeats")
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| invalid("'repeats' must be a nonnegative integer"))
            })
            .transpose()?
            .unwrap_or(1) as usize;
        Ok(Scenario {
            name,
            shape,
            window,
            repeats: repeats.max(1),
        })
    }

    /// Parses a spec document: one scenario object or an array of them.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] for malformed JSON or fields.
    pub fn parse_spec(text: &str) -> Result<Vec<Scenario>> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| invalid(&format!("malformed JSON: {e}")))?;
        match &value {
            Value::Array(items) => items.iter().map(Scenario::from_json).collect(),
            _ => Ok(vec![Scenario::from_json(&value)?]),
        }
    }

    /// The query window `[0, window)^dim`.
    ///
    /// # Errors
    ///
    /// Propagates region-construction errors.
    pub fn region(&self) -> Result<BoxRegion> {
        Ok(BoxRegion::square_window(self.shape.dim(), self.window)?)
    }
}

/// The measured outcome of one scenario run.
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Slots of the compiled schedule (`m = |N|`).
    pub num_slots: usize,
    /// Points queried per pass.
    pub points_per_pass: u64,
    /// Number of passes.
    pub repeats: usize,
    /// Total queries answered.
    pub queries: u64,
    /// Wall-clock seconds over all passes (excluding compilation).
    pub elapsed_seconds: f64,
    /// Seconds spent compiling (zero on a cache hit).
    pub compile_seconds: f64,
    /// Queries answered per second.
    pub throughput: f64,
    /// Sum of the slots returned by one pass over the window — a checksum that
    /// forces evaluation and lets two backends be compared cheaply. Deliberately
    /// per-pass (every pass answers the same queries), so it is independent of
    /// `repeats`.
    pub slot_checksum: u64,
}

impl ScenarioReport {
    /// The report as a JSON object.
    pub fn to_json_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("name".to_string(), Value::from(self.name.clone()));
        map.insert("num_slots".to_string(), Value::from(self.num_slots));
        map.insert(
            "points_per_pass".to_string(),
            Value::from(self.points_per_pass),
        );
        map.insert("repeats".to_string(), Value::from(self.repeats));
        map.insert("queries".to_string(), Value::from(self.queries));
        map.insert(
            "elapsed_seconds".to_string(),
            Value::from(self.elapsed_seconds),
        );
        map.insert(
            "compile_seconds".to_string(),
            Value::from(self.compile_seconds),
        );
        map.insert("throughput".to_string(), Value::from(self.throughput));
        map.insert("slot_checksum".to_string(), Value::from(self.slot_checksum));
        Value::Object(map)
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} m={:<3} {:>10} queries in {:>8.3} ms  ({:>12.0} queries/s, checksum {})",
            self.name,
            self.num_slots,
            self.queries,
            self.elapsed_seconds * 1e3,
            self.throughput,
            self.slot_checksum
        )
    }
}

/// Runs one scenario: compile (through the cache), then answer every window query
/// `repeats` times with the batched engine.
///
/// # Errors
///
/// Propagates compilation and query errors.
pub fn run_scenario(scenario: &Scenario, cache: &ScheduleCache) -> Result<ScenarioReport> {
    let shape = scenario.shape.prototile()?;
    let compile_start = Instant::now();
    let compiled = cache.get_or_compile(&shape)?;
    let compile_seconds = compile_start.elapsed().as_secs_f64();

    let region = scenario.region()?;
    let mut checksum = 0u64;
    let start = Instant::now();
    for _ in 0..scenario.repeats {
        let slots = compiled.slots_of_region(&region)?;
        checksum = slots.iter().map(|&s| s as u64).sum();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let points = region.len();
    let queries = points * scenario.repeats as u64;
    Ok(ScenarioReport {
        name: scenario.name.clone(),
        num_slots: compiled.num_slots(),
        points_per_pass: points,
        repeats: scenario.repeats,
        queries,
        elapsed_seconds: elapsed,
        compile_seconds,
        throughput: queries as f64 / elapsed.max(1e-12),
        slot_checksum: checksum,
    })
}

/// The default scenario suite `engine-cli` runs when given no spec file: the
/// Figure 2 neighbourhoods plus the hexagonal cluster, each over a 512×512 window.
pub fn builtin_scenarios() -> Vec<Scenario> {
    let window = 512;
    vec![
        Scenario {
            name: "moore9-512".into(),
            shape: ShapeSpec::Ball {
                dim: 2,
                radius: 1,
                metric: Metric::Chebyshev,
            },
            window,
            repeats: 3,
        },
        Scenario {
            name: "plus5-512".into(),
            shape: ShapeSpec::Ball {
                dim: 2,
                radius: 1,
                metric: Metric::Euclidean,
            },
            window,
            repeats: 3,
        },
        Scenario {
            name: "antenna8-512".into(),
            shape: ShapeSpec::Antenna,
            window,
            repeats: 3,
        },
        Scenario {
            name: "hex7-512".into(),
            shape: ShapeSpec::Hex7,
            window,
            repeats: 3,
        },
        Scenario {
            name: "ball13-512".into(),
            shape: ShapeSpec::Ball {
                dim: 2,
                radius: 2,
                metric: Metric::Euclidean,
            },
            window,
            repeats: 3,
        },
    ]
}

pub(crate) fn invalid(msg: &str) -> EngineError {
    EngineError::InvalidSpec(msg.to_string())
}

pub(crate) fn get_u64(value: &Value, field: &str) -> Result<u64> {
    value
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| invalid(&format!("missing or non-integer field '{field}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_scenario_and_arrays() {
        let single =
            r#"{"name": "m", "shape": {"kind": "ball", "dim": 2, "radius": 1}, "window": 16}"#;
        let scenarios = Scenario::parse_spec(single).unwrap();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].name, "m");
        assert_eq!(scenarios[0].repeats, 1);
        assert_eq!(
            scenarios[0].shape,
            ShapeSpec::Ball {
                dim: 2,
                radius: 1,
                metric: Metric::Chebyshev
            }
        );

        let array = r#"[
            {"name": "a", "shape": {"kind": "antenna"}, "window": 8, "repeats": 2},
            {"name": "h", "shape": {"kind": "hex7"}, "window": 8}
        ]"#;
        let scenarios = Scenario::parse_spec(array).unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].shape, ShapeSpec::Antenna);
        assert_eq!(scenarios[0].repeats, 2);
        assert_eq!(scenarios[1].shape, ShapeSpec::Hex7);
    }

    #[test]
    fn parses_explicit_point_shapes() {
        let spec =
            r#"{"shape": {"kind": "points", "points": [[0,0],[1,0],[0,1],[1,1]]}, "window": 8}"#;
        let scenario = &Scenario::parse_spec(spec).unwrap()[0];
        let tile = scenario.shape.prototile().unwrap();
        assert_eq!(tile.len(), 4);
        assert_eq!(scenario.shape.dim(), 2);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "not json",
            r#"{"window": 8}"#,
            r#"{"shape": {"kind": "warp"}, "window": 8}"#,
            r#"{"shape": {"kind": "ball", "dim": 2}, "window": 8}"#,
            r#"{"shape": {"kind": "ball", "dim": 2, "radius": 1, "metric": "hamming"}, "window": 8}"#,
            r#"{"shape": {"kind": "antenna"}, "window": 0}"#,
            r#"{"shape": {"kind": "points", "points": [[0,"x"]]}, "window": 8}"#,
        ] {
            assert!(Scenario::parse_spec(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn runs_builtin_scenarios_end_to_end() {
        let cache = ScheduleCache::new();
        for scenario in builtin_scenarios() {
            let scenario = Scenario {
                window: 32,
                repeats: 2,
                ..scenario
            };
            let report = run_scenario(&scenario, &cache).unwrap();
            assert_eq!(report.points_per_pass, 32 * 32);
            assert_eq!(report.queries, 2 * 32 * 32);
            assert!(report.throughput > 0.0);
            // A balanced schedule over any window has a predictable checksum scale.
            assert!(report.slot_checksum > 0);
            let json = report.to_json_value();
            assert_eq!(
                json.get("name").unwrap().as_str(),
                Some(report.name.as_str())
            );
        }
        // 5 distinct shapes were compiled once each.
        assert_eq!(cache.misses(), 5);
    }

    #[test]
    fn shape_display_names_are_stable() {
        assert_eq!(ShapeSpec::Antenna.to_string(), "antenna8");
        assert_eq!(ShapeSpec::Hex7.to_string(), "hex7");
        assert!(ShapeSpec::Ball {
            dim: 2,
            radius: 1,
            metric: Metric::Chebyshev
        }
        .to_string()
        .contains("r=1"));
    }
}
