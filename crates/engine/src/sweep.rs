//! The batched sweep engine: whole parameter grids of simulation runs served
//! from one set of compiled artifacts.
//!
//! The paper's schedules are meant to be evaluated across *families* of
//! deployments — seeds, offered loads, window sizes, retry budgets — but a
//! naive sweep rebuilds every compiled structure (schedule table, frame plan,
//! stochastic draws) from scratch for every run. [`run_sweep`] instead:
//!
//! 1. compiles each window's schedule and fused [`FramePlan`] once, through the
//!    sharded [`ScheduleCache`] / [`PlanCache`];
//! 2. compiles each `(seed, load)` pair's Bernoulli generation draws once into
//!    a [`TrafficTrace`] through the content-addressed [`TraceCache`] — shared
//!    by every run that varies only MAC-side knobs (retry budgets) *and* by
//!    every later sweep over the same caches, in the spirit of
//!    derandomization: the sequential random draws of the reference simulator
//!    become one deterministic per-position structure evaluated once;
//! 3. compiles each `(seed, p)` pair's slotted-ALOHA MAC decisions once into
//!    a decision bitmap through the same [`TraceCache`] (stream-tagged keys)
//!    when ALOHA runs replay compiled traffic, so MAC draws join generation
//!    draws in being hashed once per sweep instead of once per run;
//! 4. dispatches the seed axis to the bit-sliced lane kernel
//!    ([`crate::run_frames_lanes`]) where eligible — ALOHA access over
//!    periodic, staggered *or* Bernoulli traffic — packing up to 64 seeds of
//!    one `(window, traffic, retries)` grid point into one pass over the slot
//!    structure, bit-identical to scalar per-seed runs (lane-dispatched
//!    Bernoulli grids skip trace prefetch entirely: the lane kernel draws
//!    generation bits inline, bit-identical to trace replay);
//! 5. fans the expanded grid (scalar runs or lane batches) across all cores
//!    with the engine's work-stealing executor
//!    ([`crate::parallel::steal_chunks`]) — heterogeneous run costs (analytic
//!    vs loop vs lane batches) load-balance via atomic chunk claims — and
//!    aggregates the per-run [`KernelCounts`] into a [`SweepReport`],
//!    including per-tier cache hit/miss/entry counters ([`SweepCacheStats`]).
//!
//! Because all three tiers are content-addressed, a *warm* repeat of a sweep
//! (same [`SweepCaches`]) skips schedule compilation, plan fusion and trace
//! generation entirely — its setup phase degenerates to adjacency
//! construction and cache lookups, which is what the `--bench-tracecache`
//! harness baseline measures.
//!
//! A sweep spec is JSON (one object):
//!
//! ```json
//! {
//!   "name": "moore-bernoulli",
//!   "shape": { "kind": "ball", "dim": 2, "radius": 1, "metric": "chebyshev" },
//!   "windows": [64],
//!   "slots": 512,
//!   "mac": { "kind": "tiling" },
//!   "traffic": { "kind": "bernoulli", "loads": [0.02, 0.05] },
//!   "seeds": [1, 2, 3, 4],
//!   "retries": [0, 1, 2, 4]
//! }
//! ```
//!
//! `mac` is `{"kind": "tiling"}` or `{"kind": "aloha", "p": 0.25}`; `traffic`
//! is `{"kind": "bernoulli", "loads": [...]}`, `{"kind": "periodic",
//! "periods": [...]}` or `{"kind": "staggered", "periods": [...]}`. The grid is
//! the product `windows × traffic values × retries × seeds`.
//!
//! Two optional fields select the reporting mode: `"mode"` (`"full"`, the
//! default, or `"streaming"`) and `"group_by"` (an array over `"window"`,
//! `"traffic"`/`"load"`, `"retries"`, `"seed"`; implies streaming when given
//! alone). A streaming sweep folds every run online into per-axis group
//! accumulators ([`crate::aggregate::OnlineFold`]) — exact integer monoids
//! merged at the fan-out barrier — so its report is O(groups) instead of
//! O(runs) and the `per_run` section is never allocated, which is what makes
//! million-run grids feasible (see [`crate::aggregate`]).
//!
//! Node ids reproduce the sensor-network simulator's exactly (positions in
//! lexicographic window order, neighbours `p + N \ {p}`), so every run's
//! counters are bit-identical to a reference-simulator run of the same
//! configuration — property-tested across the crates in `tests/sweep_parity.rs`.

use crate::aggregate::{GroupBy, GroupFolds, GroupReport, GroupSpec, OnlineFold};
use crate::cache::{AdjacencyCache, PlanCache, ScheduleCache, SearchCache, TraceCache};
use crate::error::{EngineError, Result};
use crate::frames::InterferenceCsr;
use crate::parallel::{steal_chunks, worker_threads};
use crate::scenario::{get_u64, invalid, ShapeSpec};
use crate::simkernel::{
    run_frames, run_frames_lanes, KernelConfig, KernelCounts, KernelMac, KernelTraffic,
    TrafficTrace, TRACE_WORD_LIMIT,
};
use crate::store::StoreStats;
use crate::telemetry::{span, span_within, telemetry, Stage, TelemetrySnapshot};
use crate::FramePlan;
use latsched_lattice::BoxRegion;
use latsched_tiling::Prototile;
use serde_json::Value;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// The MAC family a sweep runs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SweepMac {
    /// The shape's Theorem 1 tiling schedule (deterministic slotted access).
    Tiling,
    /// Slotted ALOHA with the given per-slot transmission probability.
    Aloha {
        /// Per-slot transmission probability.
        p: f64,
    },
}

impl fmt::Display for SweepMac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepMac::Tiling => write!(f, "tiling"),
            SweepMac::Aloha { p } => write!(f, "aloha(p={p:.3})"),
        }
    }
}

/// The seed axis of a sweep grid: an explicit list, or an inclusive range
/// iterated lazily — a `{"range": [1, 5000000]}` axis costs two words instead
/// of a ~40 MB seed vector materialized before the first run.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SeedAxis {
    /// Explicit seeds, in grid order.
    List(Vec<u64>),
    /// Every seed of the inclusive range `start..=end`, generated on demand.
    Range {
        /// First seed of the range.
        start: u64,
        /// Last seed of the range (inclusive; at least `start`).
        end: u64,
    },
}

impl SeedAxis {
    /// The number of grid values along the seed axis.
    ///
    /// Range axes are validated at parse time to fit `usize`; a hand-built
    /// range longer than `usize::MAX` saturates.
    pub fn len(&self) -> usize {
        match self {
            SeedAxis::List(seeds) => seeds.len(),
            SeedAxis::Range { start, end } => usize::try_from(end.wrapping_sub(*start))
                .unwrap_or(usize::MAX)
                .saturating_add(1),
        }
    }

    /// Whether the seed axis is empty (a range never is).
    pub fn is_empty(&self) -> bool {
        match self {
            SeedAxis::List(seeds) => seeds.is_empty(),
            SeedAxis::Range { .. } => false,
        }
    }

    /// The `i`-th seed in grid order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self {
            SeedAxis::List(seeds) => seeds[i],
            SeedAxis::Range { start, end } => {
                let seed = start + i as u64;
                assert!(seed <= *end, "seed index {i} out of range");
                seed
            }
        }
    }

    /// Iterates the seeds in grid order without materializing them.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Parses the `seeds` field of a spec: either an array of seeds or a
    /// `{"range": [first, last]}` object (inclusive bounds, iterated lazily).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] for a malformed axis or an empty
    /// or inverted range.
    pub fn from_json(value: &Value) -> Result<Self> {
        match value {
            Value::Array(items) => {
                if items.is_empty() {
                    return Err(invalid("'seeds' must not be empty"));
                }
                let seeds = items
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .ok_or_else(|| invalid("'seeds' entries must be nonnegative integers"))
                    })
                    .collect::<Result<Vec<u64>>>()?;
                Ok(SeedAxis::List(seeds))
            }
            Value::Object(_) => {
                let range = value
                    .get("range")
                    .and_then(Value::as_array)
                    .ok_or_else(|| invalid("'seeds' object needs a 'range' array"))?;
                if range.len() != 2 {
                    return Err(invalid("'seeds.range' must be [first, last]"));
                }
                let (start, end) = match (range[0].as_u64(), range[1].as_u64()) {
                    (Some(lo), Some(hi)) => (lo, hi),
                    _ => return Err(invalid("'seeds.range' bounds must be nonnegative integers")),
                };
                if start > end {
                    return Err(invalid("'seeds.range' must satisfy first <= last"));
                }
                if usize::try_from(end - start)
                    .ok()
                    .and_then(|d| d.checked_add(1))
                    .is_none()
                {
                    return Err(invalid("'seeds.range' is too long for this platform"));
                }
                Ok(SeedAxis::Range { start, end })
            }
            _ => Err(invalid(
                "'seeds' must be an array or a {\"range\": [first, last]} object",
            )),
        }
    }
}

impl From<Vec<u64>> for SeedAxis {
    fn from(seeds: Vec<u64>) -> Self {
        SeedAxis::List(seeds)
    }
}

impl FromIterator<u64> for SeedAxis {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        SeedAxis::List(iter.into_iter().collect())
    }
}

/// The traffic axis of a sweep grid.
#[derive(Clone, PartialEq, Debug)]
pub enum SweepTraffic {
    /// Bernoulli arrivals at each listed per-slot probability.
    Bernoulli(Vec<f64>),
    /// Phase-aligned periodic traffic at each listed period.
    Periodic(Vec<u64>),
    /// Staggered (per-node-offset) periodic traffic at each listed period.
    Staggered(Vec<u64>),
}

impl SweepTraffic {
    /// The number of grid values along the traffic axis.
    pub fn len(&self) -> usize {
        match self {
            SweepTraffic::Bernoulli(loads) => loads.len(),
            SweepTraffic::Periodic(periods) | SweepTraffic::Staggered(periods) => periods.len(),
        }
    }

    /// Whether the traffic axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The human-readable label of the `i`-th traffic value (matches the
    /// sensor-network simulator's `TrafficModel` display format, so sweep
    /// reports and reference runs describe workloads identically).
    pub fn label(&self, i: usize) -> String {
        match self {
            SweepTraffic::Bernoulli(loads) => format!("bernoulli(p={:.3})", loads[i]),
            SweepTraffic::Periodic(periods) => format!("periodic(every {} slots)", periods[i]),
            SweepTraffic::Staggered(periods) => format!("staggered(every {} slots)", periods[i]),
        }
    }

    /// Parses the `traffic` field of a spec: `{"kind": "bernoulli", "loads":
    /// [...]}`, `{"kind": "periodic", "periods": [...]}` or `{"kind":
    /// "staggered", "periods": [...]}`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] naming the first malformed field.
    pub fn from_json(traffic: &Value) -> Result<Self> {
        match traffic.get("kind").and_then(Value::as_str) {
            Some("bernoulli") => {
                let loads = traffic
                    .get("loads")
                    .and_then(Value::as_array)
                    .ok_or_else(|| invalid("bernoulli traffic needs a 'loads' array"))?
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| invalid("'loads' entries must be numbers"))
                    })
                    .collect::<Result<Vec<f64>>>()?;
                Ok(SweepTraffic::Bernoulli(loads))
            }
            Some(kind @ ("periodic" | "staggered")) => {
                let periods = get_u64_array(traffic, "periods")?;
                if periods.contains(&0) {
                    return Err(invalid("'periods' entries must be positive"));
                }
                if kind == "periodic" {
                    Ok(SweepTraffic::Periodic(periods))
                } else {
                    Ok(SweepTraffic::Staggered(periods))
                }
            }
            _ => Err(invalid(
                "'traffic.kind' must be 'bernoulli', 'periodic' or 'staggered'",
            )),
        }
    }
}

/// How a sweep reports its grid.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum SweepMode {
    /// Materialize one [`SweepRunReport`] per grid point (O(runs) report
    /// memory).
    #[default]
    Full,
    /// Fold runs online onto the given grid axes — each worker folds its
    /// chunk locally and the monoid accumulators merge at the barrier — so
    /// the report is O(groups) and `per_run` is never allocated. The empty
    /// [`GroupSpec`] folds the whole grid into one global group.
    Streaming(GroupSpec),
}

impl SweepMode {
    /// The mode's spec-file name.
    pub fn name(&self) -> &'static str {
        match self {
            SweepMode::Full => "full",
            SweepMode::Streaming(_) => "streaming",
        }
    }

    /// The grouping spec of a streaming mode (`None` for full mode).
    pub fn group_spec(&self) -> Option<&GroupSpec> {
        match self {
            SweepMode::Full => None,
            SweepMode::Streaming(spec) => Some(spec),
        }
    }
}

/// One sweep: a shape, a window axis and the stochastic parameter grid.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepSpec {
    /// Sweep name (used in reports).
    pub name: String,
    /// The neighbourhood shape.
    pub shape: ShapeSpec,
    /// Side lengths of the square deployment windows.
    pub windows: Vec<i64>,
    /// Number of slots each run simulates.
    pub slots: u64,
    /// The MAC family.
    pub mac: SweepMac,
    /// The traffic axis.
    pub traffic: SweepTraffic,
    /// RNG seeds (an explicit list or a lazily iterated range).
    pub seeds: SeedAxis,
    /// Retry budgets.
    pub retries: Vec<u32>,
    /// How the grid is reported: full per-run detail, or streaming per-axis
    /// folds.
    pub mode: SweepMode,
}

impl SweepSpec {
    /// Parses one sweep spec object.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] naming the first malformed field.
    pub fn from_json(value: &Value) -> Result<Self> {
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("unnamed-sweep")
            .to_string();
        let shape = ShapeSpec::from_json(
            value
                .get("shape")
                .ok_or_else(|| invalid("sweep needs a 'shape' object"))?,
        )?;
        let windows = get_u64_array(value, "windows")?
            .into_iter()
            .map(|w| w as i64)
            .collect::<Vec<i64>>();
        if windows.iter().any(|&w| w <= 0) {
            return Err(invalid("'windows' entries must be positive"));
        }
        let slots = get_u64(value, "slots")?;
        let mac = match value.get("mac") {
            None => SweepMac::Tiling,
            Some(mac) => match mac.get("kind").and_then(Value::as_str) {
                Some("tiling") => SweepMac::Tiling,
                Some("aloha") => {
                    let p = mac
                        .get("p")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| invalid("aloha mac needs a numeric field 'p'"))?;
                    SweepMac::Aloha { p }
                }
                _ => return Err(invalid("'mac.kind' must be 'tiling' or 'aloha'")),
            },
        };
        let traffic = SweepTraffic::from_json(
            value
                .get("traffic")
                .ok_or_else(|| invalid("sweep needs a 'traffic' object"))?,
        )?;
        let seeds = SeedAxis::from_json(
            value
                .get("seeds")
                .ok_or_else(|| invalid("missing field 'seeds'"))?,
        )?;
        let retries = get_u64_array(value, "retries")?
            .into_iter()
            .map(|r| r as u32)
            .collect::<Vec<u32>>();
        // "mode" selects full or streaming reporting; "group_by" names the
        // fold axes and, when present without an explicit mode, implies
        // streaming.
        let group_by = value
            .get("group_by")
            .map(GroupSpec::from_json)
            .transpose()?;
        let mode = match value.get("mode") {
            None => match group_by {
                Some(spec) => SweepMode::Streaming(spec),
                None => SweepMode::Full,
            },
            Some(mode) => match mode.as_str() {
                Some("full") => {
                    if group_by.is_some() {
                        return Err(invalid(
                            "'group_by' requires streaming mode (drop 'mode' or set it to 'streaming')",
                        ));
                    }
                    SweepMode::Full
                }
                Some("streaming") => SweepMode::Streaming(group_by.unwrap_or_default()),
                _ => return Err(invalid("'mode' must be 'full' or 'streaming'")),
            },
        };
        let spec = SweepSpec {
            name,
            shape,
            windows,
            slots,
            mac,
            traffic,
            seeds,
            retries,
            mode,
        };
        if spec.num_runs() == 0 {
            return Err(invalid("sweep grid is empty"));
        }
        Ok(spec)
    }

    /// Parses a spec document: one sweep object or an array of them.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] for malformed JSON or fields.
    pub fn parse_spec(text: &str) -> Result<Vec<SweepSpec>> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| invalid(&format!("malformed JSON: {e}")))?;
        match &value {
            Value::Array(items) => items.iter().map(SweepSpec::from_json).collect(),
            _ => Ok(vec![SweepSpec::from_json(&value)?]),
        }
    }

    /// Total grid size: `windows × traffic values × retries × seeds`.
    pub fn num_runs(&self) -> usize {
        self.windows.len() * self.traffic.len() * self.retries.len() * self.seeds.len()
    }
}

/// The interference adjacency of all lattice sensors in a window under a
/// homogeneous neighbourhood shape: node ids follow the lexicographic window
/// order and node `v`'s neighbours are `v + N \ {v}` clipped to the window —
/// exactly the network the sensor-network simulator builds, so sweep runs are
/// comparable (and bit-identical) to reference-simulator runs.
///
/// # Errors
///
/// Propagates CSR size-limit errors.
pub fn grid_adjacency(region: &BoxRegion, shape: &Prototile) -> Result<InterferenceCsr> {
    let _span = span(Stage::AdjacencyBuild);
    let dim = region.dim();
    let lo = region.min().coords().to_vec();
    let hi = region.max().coords().to_vec();
    let extents: Vec<i64> = (0..dim).map(|i| hi[i] - lo[i] + 1).collect();
    // Lexicographic iteration makes the *first* coordinate most significant.
    let mut strides = vec![1i64; dim];
    for i in (0..dim.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * extents[i + 1];
    }
    let n = region.len();
    if n >= u32::MAX as u64 {
        return Err(EngineError::WindowTooLarge { points: n });
    }
    let offsets: Vec<&[i64]> = shape
        .iter()
        .filter(|d| !d.is_zero())
        .map(|d| d.coords())
        .collect();
    let mut lists: Vec<Vec<usize>> = vec![Vec::with_capacity(offsets.len()); n as usize];
    let mut q = vec![0i64; dim];
    for (id, p) in region.iter().enumerate() {
        let pc = p.coords();
        'offsets: for d in &offsets {
            let mut qid = 0i64;
            for i in 0..dim {
                q[i] = pc[i] + d[i];
                if q[i] < lo[i] || q[i] > hi[i] {
                    continue 'offsets;
                }
                qid += (q[i] - lo[i]) * strides[i];
            }
            lists[id].push(qid as usize);
        }
        // The simulator's interference graph keeps neighbour lists sorted.
        lists[id].sort_unstable();
    }
    InterferenceCsr::from_lists(&lists)
}

/// The tiered artifact pipeline a sweep (or several sweeps) compiles through:
/// one cache per artifact tier, chained by content fingerprints.
#[derive(Default)]
pub struct SweepCaches {
    /// Tier 1 — shape → compiled Theorem 1 schedule.
    pub schedules: ScheduleCache,
    /// Tier 2 — (region, shape) → window interference adjacency.
    pub adjacencies: AdjacencyCache,
    /// Tier 3 — (assignment, adjacency) → fused frame plan.
    pub plans: PlanCache,
    /// Tier 4 — (plan fingerprint, seed, load, slots) → compiled traffic
    /// trace.
    pub traces: TraceCache,
    /// Tier 5 — (scenario, objective) fingerprint → ranked search outcome
    /// (see [`crate::search::run_search`]).
    pub searches: SearchCache,
}

impl SweepCaches {
    /// Empty caches.
    pub fn new() -> Self {
        SweepCaches::default()
    }

    /// A point-in-time snapshot of all five tiers' counters.
    pub fn stats(&self) -> SweepCacheStats {
        SweepCacheStats {
            schedules: self.schedules.stats(),
            adjacencies: self.adjacencies.stats(),
            plans: self.plans.stats(),
            traces: self.traces.stats(),
            searches: self.searches.stats(),
        }
    }
}

/// Per-tier cache counters of the artifact pipeline, as reported by
/// [`SweepReport`]: hit/miss counts over one sweep and entry counts at its
/// end.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SweepCacheStats {
    /// Schedule-tier counters.
    pub schedules: StoreStats,
    /// Adjacency-tier counters.
    pub adjacencies: StoreStats,
    /// Plan-tier counters.
    pub plans: StoreStats,
    /// Trace-tier counters.
    pub traces: StoreStats,
    /// Search-tier counters.
    pub searches: StoreStats,
}

impl SweepCacheStats {
    /// The counter movement since an earlier snapshot (entry counts stay
    /// absolute).
    #[must_use]
    pub fn since(&self, earlier: &SweepCacheStats) -> SweepCacheStats {
        SweepCacheStats {
            schedules: self.schedules.since(&earlier.schedules),
            adjacencies: self.adjacencies.since(&earlier.adjacencies),
            plans: self.plans.since(&earlier.plans),
            traces: self.traces.since(&earlier.traces),
            searches: self.searches.since(&earlier.searches),
        }
    }

    /// The stats as a JSON object (one `{hits, misses, entries}` object per
    /// tier).
    pub fn to_json_value(&self) -> Value {
        let tier = |s: &StoreStats| {
            let mut map = BTreeMap::new();
            map.insert("hits".to_string(), Value::from(s.hits));
            map.insert("misses".to_string(), Value::from(s.misses));
            map.insert("entries".to_string(), Value::from(s.entries));
            Value::Object(map)
        };
        let mut map = BTreeMap::new();
        map.insert("schedules".to_string(), tier(&self.schedules));
        map.insert("adjacencies".to_string(), tier(&self.adjacencies));
        map.insert("plans".to_string(), tier(&self.plans));
        map.insert("traces".to_string(), tier(&self.traces));
        map.insert("searches".to_string(), tier(&self.searches));
        Value::Object(map)
    }
}

impl fmt::Display for SweepCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedules {} | adjacencies {} | plans {} | traces {} | searches {}",
            self.schedules, self.adjacencies, self.plans, self.traces, self.searches
        )
    }
}

/// One run of a sweep grid: its coordinates and its kernel counters.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepRunReport {
    /// Window side length.
    pub window: i64,
    /// Nodes in the window.
    pub nodes: usize,
    /// RNG seed.
    pub seed: u64,
    /// Human-readable traffic description (e.g. `bernoulli(p=0.020)`).
    pub traffic: String,
    /// Retry budget.
    pub retries: u32,
    /// The run's counters.
    pub counts: KernelCounts,
}

/// The measured outcome of one sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepReport {
    /// Sweep name.
    pub name: String,
    /// MAC family description.
    pub mac: String,
    /// Number of runs in the grid.
    pub runs: usize,
    /// Slots simulated per run.
    pub slots: u64,
    /// Seconds spent compiling shared artifacts (schedules, plans, traces).
    pub setup_seconds: f64,
    /// Seconds spent executing the grid.
    pub run_seconds: f64,
    /// Runs executed per second (excluding setup).
    pub runs_per_second: f64,
    /// Per-tier cache counters: hits/misses over this sweep, entries at its
    /// end. Hit/miss counts are tallied per lookup by this sweep, so they are
    /// exact even when concurrent sweeps (or searches) share the caches —
    /// a global-counter delta would attribute the other sweeps' lookups here.
    pub caches: SweepCacheStats,
    /// Element-wise sum of every run's counters.
    pub aggregate: KernelCounts,
    /// The reporting mode the sweep ran under.
    pub mode: SweepMode,
    /// Streaming group folds, in group-id order (empty in full mode).
    pub groups: Vec<GroupReport>,
    /// Per-run reports, in grid order (windows × traffic × retries × seeds);
    /// empty in streaming mode, which never materializes them.
    pub per_run: Vec<SweepRunReport>,
    /// Telemetry movement over this sweep (counters, stage timings and the
    /// stage tree), captured as a registry delta when telemetry was enabled
    /// for the run; `None` otherwise.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl SweepReport {
    /// The report as a JSON object.
    pub fn to_json_value(&self) -> Value {
        let counts_json = |c: &KernelCounts| {
            let mut map = BTreeMap::new();
            map.insert(
                "packets_generated".to_string(),
                Value::from(c.packets_generated),
            );
            map.insert(
                "packets_delivered".to_string(),
                Value::from(c.packets_delivered),
            );
            map.insert(
                "packets_dropped".to_string(),
                Value::from(c.packets_dropped),
            );
            map.insert(
                "packets_pending".to_string(),
                Value::from(c.packets_pending),
            );
            map.insert("transmissions".to_string(), Value::from(c.transmissions));
            map.insert("receptions".to_string(), Value::from(c.receptions));
            map.insert("collisions".to_string(), Value::from(c.collisions));
            map.insert("total_latency".to_string(), Value::from(c.total_latency));
            map.insert("tx_slots".to_string(), Value::from(c.tx_slots));
            map.insert("rx_slots".to_string(), Value::from(c.rx_slots));
            map.insert("idle_slots".to_string(), Value::from(c.idle_slots));
            Value::Object(map)
        };
        let mut map = BTreeMap::new();
        map.insert("name".to_string(), Value::from(self.name.clone()));
        map.insert("mac".to_string(), Value::from(self.mac.clone()));
        map.insert("runs".to_string(), Value::from(self.runs));
        map.insert("slots".to_string(), Value::from(self.slots));
        map.insert("setup_seconds".to_string(), Value::from(self.setup_seconds));
        map.insert("run_seconds".to_string(), Value::from(self.run_seconds));
        map.insert(
            "runs_per_second".to_string(),
            Value::from(self.runs_per_second),
        );
        map.insert("caches".to_string(), self.caches.to_json_value());
        map.insert("aggregate".to_string(), counts_json(&self.aggregate));
        map.insert("mode".to_string(), Value::from(self.mode.name()));
        if let SweepMode::Streaming(group_spec) = &self.mode {
            map.insert("group_by".to_string(), group_spec.to_json_value());
            map.insert(
                "groups".to_string(),
                Value::Array(self.groups.iter().map(GroupReport::to_json_value).collect()),
            );
        }
        map.insert(
            "per_run".to_string(),
            Value::Array(
                self.per_run
                    .iter()
                    .map(|r| {
                        let mut run = BTreeMap::new();
                        run.insert("window".to_string(), Value::from(r.window));
                        run.insert("nodes".to_string(), Value::from(r.nodes));
                        run.insert("seed".to_string(), Value::from(r.seed));
                        run.insert("traffic".to_string(), Value::from(r.traffic.clone()));
                        run.insert("retries".to_string(), Value::from(u64::from(r.retries)));
                        run.insert("counts".to_string(), counts_json(&r.counts));
                        Value::Object(run)
                    })
                    .collect(),
            ),
        );
        if let Some(telemetry) = &self.telemetry {
            map.insert("telemetry".to_string(), telemetry.to_json_value());
        }
        Value::Object(map)
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<20} {:>4} runs x {:>6} slots ({}) in {:>8.2} ms (+{:.2} ms setup, {:>8.1} runs/s), \
             {} delivered / {} generated, {} collisions, plans {}h/{}m, traces {}h/{}m",
            self.name,
            self.runs,
            self.slots,
            self.mac,
            self.run_seconds * 1e3,
            self.setup_seconds * 1e3,
            self.runs_per_second,
            self.aggregate.packets_delivered,
            self.aggregate.packets_generated,
            self.aggregate.collisions,
            self.caches.plans.hits,
            self.caches.plans.misses,
            self.caches.traces.hits,
            self.caches.traces.misses,
        )
    }
}

/// The shared artifacts and axis metadata of one sweep grid: any run index
/// (in expansion order, windows × traffic × retries × seeds) resolves to a
/// ready-to-execute kernel configuration in O(1), so streaming sweeps never
/// materialize an O(runs) work list.
struct GridContext<'a> {
    spec: &'a SweepSpec,
    /// Per-window shared artifacts: (window side, node count, fused plan).
    plans: Vec<(i64, usize, Arc<FramePlan>)>,
    /// One label per traffic-axis value (shared, never cloned per run).
    labels: Vec<String>,
    /// Per-(window index, seed, load bits) compiled traffic traces.
    traces: HashMap<(usize, u64, u64), Arc<TrafficTrace>>,
    /// Per-(window index, seed) compiled ALOHA MAC decision bitmaps (empty
    /// unless the sweep replays Bernoulli traffic under ALOHA access).
    mac_traces: HashMap<(usize, u64), Arc<TrafficTrace>>,
    mac: KernelMac,
}

/// One resolved grid point.
struct RunPoint<'a> {
    window: i64,
    nodes: usize,
    seed: u64,
    traffic_index: usize,
    retries: u32,
    plan: &'a Arc<FramePlan>,
    config: KernelConfig,
}

impl GridContext<'_> {
    /// The (window, traffic, retries, seed) coordinate indices of a run index.
    #[inline]
    fn coords(&self, run: usize) -> (usize, usize, usize, usize) {
        let s = self.spec.seeds.len();
        let r = self.spec.retries.len();
        let t = self.spec.traffic.len();
        (run / (s * r * t), run / (s * r) % t, run / s % r, run % s)
    }

    /// Resolves one run index to its grid point and kernel configuration.
    fn point(&self, run: usize) -> RunPoint<'_> {
        let (w, ti, ri, si) = self.coords(run);
        let (window, nodes, plan) = &self.plans[w];
        let seed = self.spec.seeds.get(si);
        let retries = self.spec.retries[ri];
        let traffic = match &self.spec.traffic {
            SweepTraffic::Bernoulli(loads) => {
                // Lane-dispatched grids prefetch no traces: the lane kernel
                // draws generation bits inline from the counter RNG, which is
                // bit-identical to replaying a compiled trace of the same
                // (seed, p) — so the fallback changes dispatch, not results.
                let key = (w, seed, loads[ti].to_bits());
                match self.traces.get(&key) {
                    Some(trace) => KernelTraffic::Trace(Arc::clone(trace)),
                    None => KernelTraffic::Bernoulli { p: loads[ti] },
                }
            }
            SweepTraffic::Periodic(periods) => KernelTraffic::Periodic {
                period: periods[ti],
            },
            SweepTraffic::Staggered(periods) => KernelTraffic::Staggered {
                period: periods[ti],
            },
        };
        // A prefetched MAC decision bitmap replaces inline ALOHA draws for
        // this (window, seed); windows past the trace size cap have no entry
        // and keep the inline MAC.
        let mac = match self.mac_traces.get(&(w, seed)) {
            Some(trace) => KernelMac::AlohaTrace(Arc::clone(trace)),
            None => self.mac.clone(),
        };
        RunPoint {
            window: *window,
            nodes: *nodes,
            seed,
            traffic_index: ti,
            retries,
            plan,
            config: KernelConfig {
                slots: self.spec.slots,
                traffic,
                mac,
                max_retries: retries,
                seed,
            },
        }
    }

    /// Executes one lane batch — `lanes` consecutive runs, the seed sub-range
    /// of one `(window, traffic, retries)` grid point — through the
    /// bit-sliced kernel, returning per-run counts in grid order.
    fn lane_batch(&self, first: usize, lanes: usize) -> Result<Vec<KernelCounts>> {
        let si = self.coords(first).3;
        let point = self.point(first);
        let seeds: Vec<u64> = (0..lanes).map(|l| self.spec.seeds.get(si + l)).collect();
        run_frames_lanes(point.plan, &point.config, &seeds)
    }

    /// Materializes one run's full-mode report from its counts.
    fn run_report(&self, run: usize, counts: KernelCounts) -> SweepRunReport {
        let point = self.point(run);
        SweepRunReport {
            window: point.window,
            nodes: point.nodes,
            seed: point.seed,
            traffic: self.labels[point.traffic_index].clone(),
            retries: point.retries,
            counts,
        }
    }
}

/// The lane batches of a grid, if its seed axis is lane-dispatchable:
/// `(first run index, lane count)` pairs covering every run, in grid order.
///
/// Lane dispatch applies to ALOHA access over periodic, staggered or
/// Bernoulli traffic with a multi-seed axis: those runs need the slot loop
/// (the MAC is stochastic), differ only in seed within one `(window, traffic,
/// retries)` grid point, and the seed axis is innermost in run order — so
/// every batch of up to 64 seeds is a contiguous run range. Bernoulli grids
/// became eligible when the lane kernel grew bit-planed backlog counters:
/// batched `bernoulli_lanes` draws replace per-seed traffic traces (and the
/// per-(window, seed) MAC decision bitmaps with them), bit-identically.
/// Tiling grids keep the scalar path (clean scheduled runs replay
/// analytically, faster than any loop).
fn lane_tasks(spec: &SweepSpec) -> Option<Vec<(usize, usize)>> {
    let eligible = matches!(spec.mac, SweepMac::Aloha { .. }) && spec.seeds.len() > 1;
    if !eligible {
        return None;
    }
    let s = spec.seeds.len();
    let points = spec.num_runs() / s;
    let mut tasks = Vec::with_capacity(points * s.div_ceil(64));
    for point in 0..points {
        let mut si = 0;
        while si < s {
            let lanes = (s - si).min(64);
            tasks.push((point * s + si, lanes));
            si += lanes;
        }
    }
    Some(tasks)
}

/// One worker's locally folded share of a streaming grid: dense per-group
/// accumulators with a touched-list ([`GroupFolds`] — O(1) array indexing per
/// fold, fold storage proportional to the groups the band actually saw) plus
/// the band's aggregate.
struct BandFold {
    folds: GroupFolds,
    aggregate: KernelCounts,
}

impl BandFold {
    fn new(num_groups: usize) -> Self {
        BandFold {
            folds: GroupFolds::new(num_groups),
            aggregate: KernelCounts::default(),
        }
    }
}

/// Merges worker bands — in band order, so the result is deterministic — into
/// the sweep's aggregate and per-group folds.
fn merge_bands(
    slots: Vec<Option<Result<BandFold>>>,
    num_groups: usize,
) -> Result<(KernelCounts, Vec<OnlineFold>)> {
    let mut aggregate = KernelCounts::default();
    let mut folds = vec![OnlineFold::new(); num_groups];
    for slot in slots {
        let band = slot.expect("every band is filled")?;
        aggregate.accumulate(&band.aggregate);
        band.folds.merge_into(&mut folds);
    }
    Ok((aggregate, folds))
}

/// Runs one sweep: compile every shared artifact once (through the caches),
/// execute the whole grid across all cores, and aggregate the counters —
/// per run in full mode, or as online per-axis group folds in streaming mode
/// (O(groups) report memory; `per_run` is never allocated).
///
/// # Errors
///
/// Propagates compilation, trace and kernel errors.
pub fn run_sweep(spec: &SweepSpec, caches: &SweepCaches) -> Result<SweepReport> {
    // Per-lookup tally: every cache access below records its own hit/miss
    // outcome here, so the report's counters belong to this sweep alone
    // (entry levels are filled in from the shared caches at the end).
    let mut tally = SweepCacheStats::default();
    let note = |stats: &mut StoreStats, hit: bool| {
        if hit {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
    };
    let telemetry_before = telemetry().enabled().then(|| telemetry().snapshot());
    let setup_start = Instant::now();
    let setup_span = span(Stage::SweepSetup);
    let shape = spec.shape.prototile()?;

    // Per-window shared artifacts: adjacency (through the content-addressed
    // adjacency tier, so warm sweeps skip the window walk), slot assignment,
    // fused plan.
    let mut plans: Vec<(i64, usize, Arc<FramePlan>)> = Vec::with_capacity(spec.windows.len());
    for &window in &spec.windows {
        let region = BoxRegion::square_window(spec.shape.dim(), window)?;
        let (adjacency, hit) = caches.adjacencies.get_or_build_tracked(&region, &shape)?;
        note(&mut tally.adjacencies, hit);
        let nodes = adjacency.num_nodes();
        let (assignment, period) = match spec.mac {
            SweepMac::Tiling => {
                let (compiled, hit) = caches.schedules.get_or_compile_tracked(&shape)?;
                note(&mut tally.schedules, hit);
                let slots = compiled.slots_of_region(&region)?;
                (
                    slots.into_iter().map(usize::from).collect::<Vec<usize>>(),
                    compiled.num_slots(),
                )
            }
            // ALOHA has no frame structure: every node is a candidate in a
            // 1-slot frame and the MAC thins candidates stochastically.
            SweepMac::Aloha { .. } => (vec![0usize; nodes], 1),
        };
        let (plan, hit) = caches
            .plans
            .get_or_build_tracked(&assignment, period, &adjacency)?;
        note(&mut tally.plans, hit);
        plans.push((window, nodes, plan));
    }
    let mac = match spec.mac {
        SweepMac::Tiling => KernelMac::Scheduled,
        SweepMac::Aloha { p } => KernelMac::Aloha { p },
    };

    // The lane plan decides prefetch: lane-dispatched grids draw generation
    // and MAC bits inline inside the bit-sliced kernel, so compiling per-seed
    // traces for them would be pure setup waste.
    let lanes = lane_tasks(spec);

    // Per-(window, seed, load) compiled traffic traces, fetched through the
    // content-addressed trace tier: shared across the retry axis of the grid
    // within this sweep, and across sweeps reusing the same caches (warm
    // sweeps skip the `n × slots` draw compilation entirely).
    let mut traces: HashMap<(usize, u64, u64), Arc<TrafficTrace>> = HashMap::new();
    if let (SweepTraffic::Bernoulli(loads), None) = (&spec.traffic, &lanes) {
        for (w, (_, _, plan)) in plans.iter().enumerate() {
            for &p in loads {
                for seed in spec.seeds.iter() {
                    let (trace, hit) = caches
                        .traces
                        .get_or_build_tracked(plan, seed, p, spec.slots)?;
                    note(&mut tally.traces, hit);
                    traces.insert((w, seed, p.to_bits()), trace);
                }
            }
        }
    }

    // Per-(window, seed) compiled ALOHA MAC decision bitmaps, through the
    // same stream-tagged trace tier: when ALOHA runs replay compiled
    // Bernoulli traffic (the scalar path), the MAC's per-(node, slot)
    // transmission draws are hashed once per (window, seed) and shared across
    // the load and retry axes — and across warm sweeps. Lane-dispatched
    // grids (any multi-seed ALOHA grid) skip this: the lane kernel batches
    // MAC draws directly.
    let mut mac_traces: HashMap<(usize, u64), Arc<TrafficTrace>> = HashMap::new();
    if let (SweepMac::Aloha { p }, SweepTraffic::Bernoulli(_), None) =
        (spec.mac, &spec.traffic, &lanes)
    {
        for (w, (_, nodes, plan)) in plans.iter().enumerate() {
            // Windows past the trace size cap keep inline per-slot MAC draws.
            if nodes.div_ceil(64) as u64 * spec.slots > TRACE_WORD_LIMIT {
                continue;
            }
            for seed in spec.seeds.iter() {
                let (trace, hit) = caches
                    .traces
                    .get_or_build_mac_tracked(plan, seed, p, spec.slots)?;
                note(&mut tally.traces, hit);
                mac_traces.insert((w, seed), trace);
            }
        }
    }

    let ctx = GridContext {
        spec,
        plans,
        labels: (0..spec.traffic.len())
            .map(|ti| spec.traffic.label(ti))
            .collect(),
        traces,
        mac_traces,
        mac,
    };
    let num_runs = spec.num_runs();
    // Resolve the grouping before the timed run phase so misconfigured specs
    // fail fast and bookkeeping counts as setup.
    let grouping = match &spec.mode {
        SweepMode::Full => None,
        SweepMode::Streaming(group_spec) => Some(GroupBy::for_spec(spec, group_spec)?),
    };
    drop(setup_span);
    let setup_seconds = setup_start.elapsed().as_secs_f64();

    // Execute the grid: one independent kernel run (or 64-seed lane batch)
    // per work item, fanned across worker threads with work-stealing claims —
    // run costs are heterogeneous (analytic replays vs slot loops vs lane
    // batches), so workers that draw cheap items pull more instead of idling.
    let run_start = Instant::now();
    let run_span = span(Stage::SweepRun);
    let (aggregate, groups, per_run) = match (&grouping, &lanes) {
        (None, None) => {
            // Full mode: collect every run's counters, then materialize the
            // per-run reports.
            let mut results: Vec<Option<Result<KernelCounts>>> = Vec::new();
            results.resize_with(num_runs, || None);
            {
                let ctx = &ctx;
                steal_chunks(&mut results, 2, 1, |offset, chunk| {
                    // Worker threads start with an empty span path, so the
                    // task span re-parents itself under the sweep's run span.
                    let _span = span_within(&[Stage::SweepRun], Stage::SweepTask);
                    for (i, out) in chunk.iter_mut().enumerate() {
                        let point = ctx.point(offset + i);
                        *out = Some(run_frames(point.plan, &point.config));
                    }
                });
            }
            let mut aggregate = KernelCounts::default();
            let mut per_run = Vec::with_capacity(num_runs);
            for (run, result) in results.into_iter().enumerate() {
                let counts = result.expect("every chunk is filled")?;
                aggregate.accumulate(&counts);
                per_run.push(ctx.run_report(run, counts));
            }
            (aggregate, Vec::new(), per_run)
        }
        (None, Some(tasks)) => {
            // Full mode, lane-dispatched: fan whole batches; each batch's
            // counts come back in seed order and land on a contiguous run
            // range, so flattening the batches in task order reproduces grid
            // order exactly.
            let mut results: Vec<Option<Result<Vec<KernelCounts>>>> = Vec::new();
            results.resize_with(tasks.len(), || None);
            {
                let ctx = &ctx;
                steal_chunks(&mut results, 2, 1, |offset, chunk| {
                    let _span = span_within(&[Stage::SweepRun], Stage::SweepTask);
                    for (i, out) in chunk.iter_mut().enumerate() {
                        let (first, lanes) = tasks[offset + i];
                        *out = Some(ctx.lane_batch(first, lanes));
                    }
                });
            }
            let mut aggregate = KernelCounts::default();
            let mut per_run = Vec::with_capacity(num_runs);
            for result in results {
                for counts in result.expect("every chunk is filled")? {
                    aggregate.accumulate(&counts);
                    per_run.push(ctx.run_report(per_run.len(), counts));
                }
            }
            (aggregate, Vec::new(), per_run)
        }
        (Some(grouping), None) => {
            // Streaming mode: each worker band folds its contiguous run range
            // into local per-group accumulators; the folds are commutative
            // monoids over exact integers, so the barrier merge (in band
            // order) reproduces the sequential fold bit for bit regardless of
            // which worker stole which band. Bands oversubscribe the workers
            // 4× so stealing has slack to balance heterogeneous band costs.
            let bands = (worker_threads() * 4).min(num_runs).max(1);
            let per_band = num_runs.div_ceil(bands);
            let mut slots: Vec<Option<Result<BandFold>>> = Vec::new();
            slots.resize_with(bands, || None);
            {
                let ctx = &ctx;
                steal_chunks(&mut slots, 2, 1, |offset, chunk| {
                    let _span = span_within(&[Stage::SweepRun], Stage::SweepBand);
                    for (b, out) in chunk.iter_mut().enumerate() {
                        let start = (offset + b) * per_band;
                        let end = (start + per_band).min(num_runs);
                        let mut band = BandFold::new(grouping.num_groups());
                        let run_band = || -> Result<BandFold> {
                            for run in start..end {
                                let point = ctx.point(run);
                                let counts = run_frames(point.plan, &point.config)?;
                                band.aggregate.accumulate(&counts);
                                band.folds.observe(grouping.group_of_run(run), &counts);
                            }
                            Ok(band)
                        };
                        *out = Some(run_band());
                    }
                });
            }
            let merge_span = span(Stage::FoldMerge);
            let (aggregate, folds) = merge_bands(slots, grouping.num_groups())?;
            drop(merge_span);
            (aggregate, grouping.reports(spec, folds), Vec::new())
        }
        (Some(grouping), Some(tasks)) => {
            // Streaming mode, lane-dispatched: bands cover contiguous *task*
            // ranges; every lane's counts fold at its own run index (`first +
            // lane`), and the folds stay commutative monoids, so the barrier
            // merge is as bit-exact as the scalar streaming path. Bands
            // oversubscribe the workers 4× for stealing slack.
            let bands = (worker_threads() * 4).min(tasks.len()).max(1);
            let per_band = tasks.len().div_ceil(bands);
            let mut slots: Vec<Option<Result<BandFold>>> = Vec::new();
            slots.resize_with(bands, || None);
            {
                let ctx = &ctx;
                steal_chunks(&mut slots, 2, 1, |offset, chunk| {
                    let _span = span_within(&[Stage::SweepRun], Stage::SweepBand);
                    for (b, out) in chunk.iter_mut().enumerate() {
                        let start = (offset + b) * per_band;
                        let end = (start + per_band).min(tasks.len());
                        let mut band = BandFold::new(grouping.num_groups());
                        let run_band = || -> Result<BandFold> {
                            for &(first, lanes) in &tasks[start..end] {
                                for (l, counts) in ctx.lane_batch(first, lanes)?.iter().enumerate()
                                {
                                    band.aggregate.accumulate(counts);
                                    band.folds.observe(grouping.group_of_run(first + l), counts);
                                }
                            }
                            Ok(band)
                        };
                        *out = Some(run_band());
                    }
                });
            }
            let merge_span = span(Stage::FoldMerge);
            let (aggregate, folds) = merge_bands(slots, grouping.num_groups())?;
            drop(merge_span);
            (aggregate, grouping.reports(spec, folds), Vec::new())
        }
    };
    drop(run_span);
    let run_seconds = run_start.elapsed().as_secs_f64();

    // Entry counts are levels, not flows: report where the shared caches
    // stand now, next to this sweep's own hit/miss tallies.
    let levels = caches.stats();
    tally.schedules.entries = levels.schedules.entries;
    tally.adjacencies.entries = levels.adjacencies.entries;
    tally.plans.entries = levels.plans.entries;
    tally.traces.entries = levels.traces.entries;
    tally.searches.entries = levels.searches.entries;

    Ok(SweepReport {
        name: spec.name.clone(),
        mac: spec.mac.to_string(),
        runs: num_runs,
        slots: spec.slots,
        setup_seconds,
        run_seconds,
        runs_per_second: num_runs as f64 / run_seconds.max(1e-12),
        caches: tally,
        aggregate,
        mode: spec.mode.clone(),
        groups,
        per_run,
        telemetry: telemetry_before.map(|before| telemetry().snapshot().since(&before)),
    })
}

/// The default sweep `engine-cli sweep` runs when given no spec file: a 64-run
/// stochastic grid (2 loads × 4 retry budgets × 8 seeds) of Bernoulli traffic
/// under the Moore tiling schedule on a 64×64 window.
pub fn builtin_sweep() -> SweepSpec {
    SweepSpec {
        name: "moore-bernoulli-64".into(),
        shape: ShapeSpec::Ball {
            dim: 2,
            radius: 1,
            metric: latsched_lattice::Metric::Chebyshev,
        },
        windows: vec![64],
        slots: 512,
        mac: SweepMac::Tiling,
        traffic: SweepTraffic::Bernoulli(vec![0.02, 0.05]),
        seeds: (1..=8).collect(),
        retries: vec![0, 1, 2, 4],
        mode: SweepMode::Full,
    }
}

fn get_u64_array(value: &Value, field: &str) -> Result<Vec<u64>> {
    let raw = value
        .get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| invalid(&format!("missing or non-array field '{field}'")))?;
    if raw.is_empty() {
        return Err(invalid(&format!("'{field}' must not be empty")));
    }
    raw.iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| invalid(&format!("'{field}' entries must be nonnegative integers")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            windows: vec![8],
            slots: 64,
            seeds: vec![1, 2].into(),
            retries: vec![0, 2],
            traffic: SweepTraffic::Bernoulli(vec![0.1]),
            ..builtin_sweep()
        }
    }

    #[test]
    fn parses_sweep_specs() {
        let text = r#"{
            "name": "s",
            "shape": {"kind": "ball", "dim": 2, "radius": 1},
            "windows": [16, 32],
            "slots": 128,
            "mac": {"kind": "aloha", "p": 0.2},
            "traffic": {"kind": "bernoulli", "loads": [0.05, 0.1]},
            "seeds": [1, 2, 3],
            "retries": [0, 4]
        }"#;
        let specs = SweepSpec::parse_spec(text).unwrap();
        assert_eq!(specs.len(), 1);
        let spec = &specs[0];
        assert_eq!(spec.name, "s");
        assert_eq!(spec.mac, SweepMac::Aloha { p: 0.2 });
        assert_eq!(spec.num_runs(), 2 * 2 * 2 * 3);
        // Defaults: omitted mac means the tiling schedule.
        let text = r#"{
            "shape": {"kind": "hex7"}, "windows": [8], "slots": 16,
            "traffic": {"kind": "staggered", "periods": [4, 8]},
            "seeds": [0], "retries": [1]
        }"#;
        let spec = &SweepSpec::parse_spec(text).unwrap()[0];
        assert_eq!(spec.mac, SweepMac::Tiling);
        assert_eq!(spec.traffic, SweepTraffic::Staggered(vec![4, 8]));
    }

    #[test]
    fn rejects_malformed_sweep_specs() {
        for bad in [
            "not json",
            r#"{"windows": [8]}"#,
            r#"{"shape": {"kind": "hex7"}, "windows": [], "slots": 8,
                "traffic": {"kind": "bernoulli", "loads": [0.1]}, "seeds": [1], "retries": [0]}"#,
            r#"{"shape": {"kind": "hex7"}, "windows": [8], "slots": 8,
                "traffic": {"kind": "warp"}, "seeds": [1], "retries": [0]}"#,
            r#"{"shape": {"kind": "hex7"}, "windows": [8], "slots": 8,
                "traffic": {"kind": "periodic", "periods": [0]}, "seeds": [1], "retries": [0]}"#,
            r#"{"shape": {"kind": "hex7"}, "windows": [8], "slots": 8,
                "mac": {"kind": "aloha"},
                "traffic": {"kind": "bernoulli", "loads": [0.1]}, "seeds": [1], "retries": [0]}"#,
        ] {
            assert!(SweepSpec::parse_spec(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn seed_axis_parses_ranges_lazily() {
        let spec_text = |seeds: &str| {
            format!(
                r#"{{"shape": {{"kind": "hex7"}}, "windows": [8], "slots": 16,
                    "traffic": {{"kind": "bernoulli", "loads": [0.1]}},
                    "seeds": {seeds}, "retries": [0]}}"#
            )
        };
        let spec = &SweepSpec::parse_spec(&spec_text(r#"{"range": [1, 5000000]}"#)).unwrap()[0];
        assert_eq!(
            spec.seeds,
            SeedAxis::Range {
                start: 1,
                end: 5_000_000
            }
        );
        // A five-million-seed axis is O(1) memory: length and lookups are
        // computed, never materialized.
        assert_eq!(spec.seeds.len(), 5_000_000);
        assert_eq!(spec.num_runs(), 5_000_000);
        assert_eq!(spec.seeds.get(0), 1);
        assert_eq!(spec.seeds.get(4_999_999), 5_000_000);
        assert_eq!(spec.seeds.iter().take(3).collect::<Vec<u64>>(), [1, 2, 3]);
        // A singleton range is valid.
        let one =
            SeedAxis::from_json(&serde_json::from_str(r#"{"range": [7, 7]}"#).unwrap()).unwrap();
        assert_eq!(one.iter().collect::<Vec<u64>>(), [7]);
        // Malformed axes are rejected.
        for bad in [
            r#"[]"#,
            r#"[1, -2]"#,
            r#"{"range": [5, 1]}"#,
            r#"{"range": [1]}"#,
            r#"{"range": [1, 2, 3]}"#,
            r#"{"range": ["a", "b"]}"#,
            r#"{"span": [1, 2]}"#,
            r#""everything""#,
        ] {
            assert!(
                SweepSpec::parse_spec(&spec_text(bad)).is_err(),
                "accepted seeds: {bad}"
            );
        }
    }

    #[test]
    fn seed_range_sweeps_match_list_sweeps() {
        let caches = SweepCaches::new();
        let list = run_sweep(&tiny_spec(), &caches).unwrap();
        let ranged = run_sweep(
            &SweepSpec {
                seeds: SeedAxis::Range { start: 1, end: 2 },
                ..tiny_spec()
            },
            &caches,
        )
        .unwrap();
        // Equal seed contents ⇒ bit-identical runs, whatever the axis form.
        assert_eq!(list.per_run, ranged.per_run);
        assert_eq!(list.aggregate, ranged.aggregate);
    }

    #[test]
    fn grid_adjacency_matches_hand_counts() {
        // 3×3 Moore window: the centre node affects all 8 others, corners 3.
        let region = BoxRegion::square_window(2, 3).unwrap();
        let shape = latsched_tiling::shapes::moore();
        let csr = grid_adjacency(&region, &shape).unwrap();
        assert_eq!(csr.num_nodes(), 9);
        let degrees: Vec<usize> = (0..9).map(|v| csr.degree(v)).collect();
        // Lexicographic order: (0,0), (0,1), (0,2), (1,0), (1,1), …
        assert_eq!(degrees, vec![3, 5, 3, 5, 8, 5, 3, 5, 3]);
        // Neighbour lists are sorted and self-free.
        for v in 0..9 {
            let ns = csr.neighbours_of(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
            assert!(!ns.contains(&(v as u32)));
        }
    }

    #[test]
    fn sweep_runs_whole_grid_and_aggregates() {
        let spec = tiny_spec();
        let caches = SweepCaches::new();
        let report = run_sweep(&spec, &caches).unwrap();
        assert_eq!(report.runs, 4);
        assert_eq!(report.per_run.len(), 4);
        // One plan built, reused by every other run of the window; one trace
        // per (seed, load) pair, shared across the retry axis.
        assert_eq!(report.caches.plans.misses, 1);
        assert_eq!(
            report.caches.plans.hits, 0,
            "plan looked up once per window"
        );
        assert_eq!(report.caches.schedules.misses, 1);
        assert_eq!(report.caches.traces.misses, 2, "one trace per seed");
        assert_eq!(report.caches.traces.hits, 0);
        let mut sum = KernelCounts::default();
        for run in &report.per_run {
            assert_eq!(run.window, 8);
            assert_eq!(run.nodes, 64);
            assert_eq!(
                run.counts.packets_generated,
                run.counts.packets_delivered
                    + run.counts.packets_dropped
                    + run.counts.packets_pending
            );
            sum.accumulate(&run.counts);
        }
        assert_eq!(sum, report.aggregate);
        assert!(report.aggregate.packets_generated > 0);
        // Same seed + load + retries ⇒ same counters regardless of grid position.
        let again = run_sweep(&spec, &caches).unwrap();
        assert_eq!(report.per_run, again.per_run);
        // The warm sweep hits every tier: no schedule, plan or trace rebuilds.
        assert_eq!(again.caches.plans.misses, 0);
        assert!(again.caches.plans.hits > 0);
        assert_eq!(again.caches.schedules.misses, 0);
        assert_eq!(again.caches.traces.misses, 0, "warm sweeps reuse traces");
        assert_eq!(again.caches.traces.hits, 2);
        assert_eq!(again.caches.traces.entries, 2);
        let json = report.to_json_value();
        assert_eq!(json.get("runs").unwrap().as_u64(), Some(4));
        assert!(json.get("per_run").unwrap().as_array().unwrap().len() == 4);
        let caches_json = json.get("caches").unwrap();
        assert_eq!(
            caches_json
                .get("traces")
                .unwrap()
                .get("misses")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert!(report.to_string().contains("4 runs"));
        assert!(report.caches.to_string().contains("traces"));
    }

    #[test]
    fn streaming_mode_folds_groups_without_per_run_reports() {
        use crate::aggregate::fold_full_report;

        let full_spec = SweepSpec {
            windows: vec![6, 8],
            slots: 96,
            seeds: vec![1, 2, 3].into(),
            retries: vec![0, 2],
            traffic: SweepTraffic::Bernoulli(vec![0.1, 0.3]),
            ..builtin_sweep()
        };
        let group_spec = GroupSpec::parse("load,retries").unwrap();
        let streaming_spec = SweepSpec {
            mode: SweepMode::Streaming(group_spec.clone()),
            ..full_spec.clone()
        };
        let caches = SweepCaches::new();
        let full = run_sweep(&full_spec, &caches).unwrap();
        let streaming = run_sweep(&streaming_spec, &caches).unwrap();

        assert_eq!(streaming.runs, full.runs);
        assert!(
            streaming.per_run.is_empty(),
            "streaming never builds per_run"
        );
        assert!(full.groups.is_empty(), "full mode reports no groups");
        assert_eq!(streaming.aggregate, full.aggregate);
        assert_eq!(streaming.groups.len(), 2 * 2);

        // The streaming folds are bit-identical to folding the full report's
        // per-run list by the same axes.
        let folded = fold_full_report(&full_spec, &group_spec, &full.per_run).unwrap();
        assert_eq!(streaming.groups, folded);
        let total_runs: u64 = streaming.groups.iter().map(|g| g.fold.runs).sum();
        assert_eq!(total_runs, full.runs as u64);

        // Group JSON carries keys, stats and histograms under stable names.
        let json = streaming.to_json_value();
        assert_eq!(json.get("mode").unwrap().as_str(), Some("streaming"));
        assert_eq!(json.get("group_by").unwrap(), &group_spec.to_json_value());
        let groups = json.get("groups").unwrap().as_array().unwrap();
        assert_eq!(groups.len(), 4);
        assert!(groups[0].get("key").unwrap().get("traffic").is_some());
        assert!(groups[0]
            .get("stats")
            .unwrap()
            .get("packets_delivered")
            .is_some());
        assert!(json.get("per_run").unwrap().as_array().unwrap().is_empty());
        // Full-mode JSON stays shaped as before (mode only).
        assert_eq!(
            full.to_json_value().get("mode").unwrap().as_str(),
            Some("full")
        );
        assert!(full.to_json_value().get("groups").is_none());
    }

    #[test]
    fn streaming_specs_parse_from_json() {
        let text = r#"{
            "shape": {"kind": "ball", "dim": 2, "radius": 1},
            "windows": [8], "slots": 32,
            "traffic": {"kind": "bernoulli", "loads": [0.1]},
            "seeds": [1, 2], "retries": [0],
            "mode": "streaming", "group_by": ["seed"]
        }"#;
        let spec = &SweepSpec::parse_spec(text).unwrap()[0];
        assert_eq!(
            spec.mode,
            SweepMode::Streaming(GroupSpec::parse("seed").unwrap())
        );
        // group_by alone implies streaming…
        let implied = text.replace(r#""mode": "streaming", "#, "");
        let spec = &SweepSpec::parse_spec(&implied).unwrap()[0];
        assert!(matches!(spec.mode, SweepMode::Streaming(_)));
        // …but full mode with group_by is contradictory.
        let contradictory = text.replace(r#""mode": "streaming""#, r#""mode": "full""#);
        assert!(SweepSpec::parse_spec(&contradictory).is_err());
        let bad_mode = text.replace(r#""mode": "streaming""#, r#""mode": "warp""#);
        assert!(SweepSpec::parse_spec(&bad_mode).is_err());
        // Streaming with no group_by folds everything into one group.
        let global = text.replace(r#", "group_by": ["seed"]"#, "");
        let spec = &SweepSpec::parse_spec(&global).unwrap()[0];
        assert_eq!(spec.mode, SweepMode::Streaming(GroupSpec::default()));
        let report = run_sweep(spec, &SweepCaches::new()).unwrap();
        assert_eq!(report.groups.len(), 1);
        assert_eq!(report.groups[0].fold.runs, 2);
        assert_eq!(report.groups[0].fold.sums(), report.aggregate);
    }

    #[test]
    fn adjacency_tier_serves_warm_sweeps() {
        let spec = tiny_spec();
        let caches = SweepCaches::new();
        let cold = run_sweep(&spec, &caches).unwrap();
        assert_eq!(cold.caches.adjacencies.misses, 1);
        assert_eq!(cold.caches.adjacencies.hits, 0);
        let warm = run_sweep(&spec, &caches).unwrap();
        assert_eq!(warm.caches.adjacencies.misses, 0, "adjacency reused warm");
        assert_eq!(warm.caches.adjacencies.hits, 1);
        assert_eq!(warm.caches.adjacencies.entries, 1);
        // The tier shows up in the JSON and display surfaces.
        let json = warm.to_json_value();
        assert_eq!(
            json.get("caches")
                .unwrap()
                .get("adjacencies")
                .unwrap()
                .get("misses")
                .unwrap()
                .as_u64(),
            Some(0)
        );
        assert!(warm.caches.to_string().contains("adjacencies"));
    }

    #[test]
    fn retry_axis_shares_traces_but_changes_outcomes() {
        let spec = SweepSpec {
            retries: vec![0, 8],
            traffic: SweepTraffic::Bernoulli(vec![0.4]),
            mac: SweepMac::Aloha { p: 0.5 },
            seeds: vec![7].into(),
            ..tiny_spec()
        };
        let report = run_sweep(&spec, &SweepCaches::new()).unwrap();
        assert_eq!(report.runs, 2);
        let (a, b) = (&report.per_run[0], &report.per_run[1]);
        // Same trace ⇒ identical generation counts; different budgets ⇒
        // different drop behaviour.
        assert_eq!(a.counts.packets_generated, b.counts.packets_generated);
        assert!(a.counts.packets_dropped > b.counts.packets_dropped);
    }

    #[test]
    fn lane_dispatched_sweeps_match_scalar_per_seed_sweeps() {
        // ALOHA + staggered + 3 seeds lane-dispatches; the same grid with
        // single-seed axes stays scalar (lanes need a multi-seed axis), so
        // this pins lane batches bit-for-bit against the scalar kernel at the
        // sweep level, across the traffic and retry axes.
        let spec = SweepSpec {
            mac: SweepMac::Aloha { p: 0.4 },
            traffic: SweepTraffic::Staggered(vec![3, 8]),
            seeds: vec![5, 6, 7].into(),
            retries: vec![0, 2],
            ..tiny_spec()
        };
        let caches = SweepCaches::new();
        let report = run_sweep(&spec, &caches).unwrap();
        assert_eq!(report.runs, 12);
        assert_eq!(report.per_run.len(), 12);
        for (i, seed) in [5u64, 6, 7].into_iter().enumerate() {
            let scalar = run_sweep(
                &SweepSpec {
                    seeds: vec![seed].into(),
                    ..spec.clone()
                },
                &caches,
            )
            .unwrap();
            for (j, run) in scalar.per_run.iter().enumerate() {
                assert_eq!(report.per_run[j * 3 + i], *run, "seed {seed} point {j}");
            }
        }
        // Streaming over the same grid folds the identical lane counts.
        let streaming = run_sweep(
            &SweepSpec {
                mode: SweepMode::Streaming(GroupSpec::default()),
                ..spec
            },
            &caches,
        )
        .unwrap();
        assert_eq!(streaming.aggregate, report.aggregate);
    }

    #[test]
    fn mac_decision_bitmaps_are_cached_for_bernoulli_aloha_sweeps() {
        // A *single-seed* ALOHA × Bernoulli grid keeps the scalar trace path:
        // one traffic trace and one MAC decision bitmap for the seed, both
        // replayed warm, and results unchanged by where the draws came from.
        // (Multi-seed grids lane-dispatch and compile no traces at all — see
        // `bernoulli_lane_sweeps_match_scalar_trace_sweeps`.)
        let spec = SweepSpec {
            mac: SweepMac::Aloha { p: 0.3 },
            traffic: SweepTraffic::Bernoulli(vec![0.2]),
            seeds: vec![9].into(),
            retries: vec![1, 4],
            ..tiny_spec()
        };
        let caches = SweepCaches::new();
        let cold = run_sweep(&spec, &caches).unwrap();
        assert_eq!(
            cold.caches.traces.misses, 2,
            "one traffic trace + one MAC bitmap for the seed"
        );
        let warm = run_sweep(&spec, &caches).unwrap();
        assert_eq!(
            warm.caches.traces.misses, 0,
            "warm sweeps reuse MAC bitmaps"
        );
        assert_eq!(warm.caches.traces.hits, 2);
        assert_eq!(warm.caches.traces.entries, 2);
        assert_eq!(cold.per_run, warm.per_run);
        assert!(cold.aggregate.collisions > 0, "ALOHA at p=0.3 collides");
    }

    #[test]
    fn bernoulli_lane_sweeps_match_scalar_trace_sweeps() {
        // A multi-seed ALOHA × Bernoulli grid lane-dispatches: no traffic
        // traces or MAC bitmaps are compiled (inline lane draws replace
        // both), and every run's counters are bit-identical to the
        // trace-replaying scalar path of the same single-seed grid.
        let spec = SweepSpec {
            mac: SweepMac::Aloha { p: 0.3 },
            traffic: SweepTraffic::Bernoulli(vec![0.1, 0.2]),
            seeds: vec![1, 9, 23].into(),
            retries: vec![1, 4],
            ..tiny_spec()
        };
        assert!(
            lane_tasks(&spec).is_some(),
            "multi-seed grids lane-dispatch"
        );
        let caches = SweepCaches::new();
        let laned = run_sweep(&spec, &caches).unwrap();
        assert_eq!(laned.runs, 12);
        assert_eq!(
            laned.caches.traces.misses + laned.caches.traces.hits,
            0,
            "lane dispatch never touches the trace tier"
        );
        for (i, seed) in [1u64, 9, 23].into_iter().enumerate() {
            let scalar = run_sweep(
                &SweepSpec {
                    seeds: vec![seed].into(),
                    ..spec.clone()
                },
                &caches,
            )
            .unwrap();
            for (j, run) in scalar.per_run.iter().enumerate() {
                assert_eq!(laned.per_run[j * 3 + i], *run, "seed {seed} point {j}");
            }
        }
        assert!(laned.aggregate.collisions > 0, "ALOHA at p=0.3 collides");
    }

    #[test]
    fn periodic_sweeps_run_without_traces() {
        let spec = SweepSpec {
            traffic: SweepTraffic::Periodic(vec![16, 32]),
            seeds: vec![1].into(),
            retries: vec![2],
            ..tiny_spec()
        };
        let report = run_sweep(&spec, &SweepCaches::new()).unwrap();
        assert_eq!(report.runs, 2);
        assert_eq!(report.aggregate.collisions, 0, "tiling MACs never collide");
        assert!(report.aggregate.packets_delivered > 0);
    }
}
