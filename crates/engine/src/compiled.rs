//! The compiled schedule: a periodic schedule flattened into a dense slot table.
//!
//! [`PeriodicSchedule::slot_of`] reduces the query point with the Hermite normal
//! form of the period sublattice and then looks the canonical representative up in
//! a `BTreeMap`, allocating a `Point` per call. [`CompiledSchedule`] performs the
//! same coset reduction on a stack buffer and replaces the map by a contiguous
//! `Vec<u16>` indexed with the dense coset rank of
//! [`Sublattice::coset_rank`] — an `O(d²)` integer-only query with no allocation
//! and a single cache-friendly table read. Batch entry points evaluate whole
//! regions and point sets across worker threads.

use crate::error::{EngineError, Result};
use crate::parallel::fill_chunks;
use latsched_core::{Deployment, PeriodicSchedule, SlotSource, VerificationReport};
use latsched_lattice::{BoxRegion, DynReducer, FixedReducer, Point, Sublattice};
use std::fmt;

/// Queries of dimension at most this run entirely on the stack; the paper's
/// lattices are 2- or 3-dimensional, so the heap fallback is essentially never
/// taken.
const MAX_STACK_DIM: usize = 8;

/// The largest dense table the compiler will build (2²⁶ cosets ≈ 128 MiB of
/// `u16`s); periods beyond this indicate a misuse of the dense representation.
const MAX_TABLE_ENTRIES: u64 = 1 << 26;

/// A periodic schedule compiled into a dense, contiguous slot table for
/// serving-grade point queries.
///
/// # Examples
///
/// ```
/// use latsched_core::theorem1;
/// use latsched_engine::CompiledSchedule;
/// use latsched_lattice::Point;
/// use latsched_tiling::{find_tiling, shapes};
///
/// let tiling = find_tiling(&shapes::moore())?.unwrap();
/// let schedule = theorem1::schedule_from_tiling(&tiling);
/// let compiled = CompiledSchedule::compile(&schedule)?;
/// let p = Point::xy(1_000_003, -999_999);
/// assert_eq!(compiled.slot_of(&p)? as usize, schedule.slot_of(&p)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompiledSchedule {
    dim: usize,
    num_slots: usize,
    /// The period sublattice the table is indexed by (kept for interop with the
    /// exact verifier and for re-deriving coset representatives).
    period: Sublattice,
    /// Row-major copy of the period's HNF basis, for the in-place reduction.
    hnf: Vec<i64>,
    /// The HNF diagonal (the mixed-radix radices of the coset rank).
    diag: Vec<i64>,
    /// `table[rank]` is the slot of the coset with that dense rank.
    table: Vec<u16>,
    /// Dimension-specialized, division-free reduction for the paper's 2-D and
    /// 3-D lattices; other dimensions run the runtime-dimension
    /// [`DynReducer`], which is equally division-free but loop-bounded at
    /// runtime.
    fixed: FixedReduce,
}

/// The dimension dispatch of the per-query coset reduction: the hot dimensions
/// get a const-generic [`FixedReducer`] whose `div_euclid` chain is strength-
/// reduced to reciprocal multiplications, and every other dimension gets the
/// runtime-dimension [`DynReducer`] with the same reciprocal arithmetic — no
/// query path pays hardware divisions any more.
#[derive(Clone, PartialEq, Eq, Debug)]
enum FixedReduce {
    D2(FixedReducer<2>),
    D3(FixedReducer<3>),
    Dyn(DynReducer),
}

impl CompiledSchedule {
    /// Flattens a periodic schedule into a dense table.
    ///
    /// # Errors
    ///
    /// * [`EngineError::TooManySlots`] if the schedule has ≥ 2¹⁶ slots;
    /// * [`EngineError::TableTooLarge`] if the period has more than 2²⁶ cosets.
    pub fn compile(schedule: &PeriodicSchedule) -> Result<Self> {
        if schedule.num_slots() > u16::MAX as usize {
            return Err(EngineError::TooManySlots {
                slots: schedule.num_slots(),
            });
        }
        let period = schedule.period().clone();
        if period.index() > MAX_TABLE_ENTRIES {
            return Err(EngineError::TableTooLarge {
                cosets: period.index(),
            });
        }
        let dim = period.dim();
        let mut hnf = Vec::with_capacity(dim * dim);
        let mut diag = Vec::with_capacity(dim);
        for r in 0..dim {
            for c in 0..dim {
                hnf.push(period.hnf().get(r, c));
            }
            diag.push(period.hnf().get(r, r));
        }
        let fixed = match dim {
            2 => FixedReduce::D2(period.fixed_reducer::<2>()?),
            3 => FixedReduce::D3(period.fixed_reducer::<3>()?),
            _ => FixedReduce::Dyn(period.dyn_reducer()?),
        };
        let mut compiled = CompiledSchedule {
            dim,
            num_slots: schedule.num_slots(),
            period,
            hnf,
            diag,
            table: vec![0u16; 0],
            fixed,
        };
        let mut table = vec![0u16; compiled.period.index() as usize];
        for (rep, &slot) in schedule.slot_table() {
            let rank = compiled.rank_of_coords(rep.coords());
            table[rank] = slot as u16;
        }
        compiled.table = table;
        Ok(compiled)
    }

    /// The number of time slots `m`.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// The ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The period sublattice the table is indexed by.
    pub fn period(&self) -> &Sublattice {
        &self.period
    }

    /// The number of table entries (one per coset of the period).
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// The dense coset rank of a point given by its coordinates: the 2-D and
    /// 3-D cases run the division-free const-generic [`FixedReducer`]; every
    /// other dimension takes the division-free runtime [`DynReducer`] on a
    /// scratch buffer.
    #[inline]
    fn rank_of_coords(&self, coords: &[i64]) -> usize {
        debug_assert_eq!(coords.len(), self.dim);
        match &self.fixed {
            FixedReduce::D2(r) => r.coset_rank_fixed(&mut [coords[0], coords[1]]) as usize,
            FixedReduce::D3(r) => {
                r.coset_rank_fixed(&mut [coords[0], coords[1], coords[2]]) as usize
            }
            FixedReduce::Dyn(r) => {
                if self.dim <= MAX_STACK_DIM {
                    let mut buf = [0i64; MAX_STACK_DIM];
                    buf[..self.dim].copy_from_slice(coords);
                    r.coset_rank_dyn(&mut buf[..self.dim]) as usize
                } else {
                    let mut buf = coords.to_vec();
                    r.coset_rank_dyn(&mut buf) as usize
                }
            }
        }
    }

    /// The slot of the sensor with the given coordinates, without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] on a wrong-length slice.
    #[inline]
    pub fn slot_of_coords(&self, coords: &[i64]) -> Result<u16> {
        if coords.len() != self.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.dim,
                found: coords.len(),
            });
        }
        Ok(self.table[self.rank_of_coords(coords)])
    }

    /// The slot of the sensor at `p`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] on a wrong-dimensional point.
    #[inline]
    pub fn slot_of(&self, p: &Point) -> Result<u16> {
        self.slot_of_coords(p.coords())
    }

    /// Returns `true` if the sensor at `p` may broadcast at time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] on a wrong-dimensional point.
    pub fn may_transmit(&self, p: &Point, t: u64) -> Result<bool> {
        Ok(t % self.num_slots as u64 == self.slot_of(p)? as u64)
    }

    /// The slots of every point of a box window, in the window's lexicographic
    /// iteration order, evaluated across worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] on a wrong-dimensional window.
    pub fn slots_of_region(&self, window: &BoxRegion) -> Result<Vec<u16>> {
        self.check_dim(window.dim())?;
        let total = usize::try_from(window.len()).map_err(|_| EngineError::WindowTooLarge {
            points: window.len(),
        })?;
        let mut out = vec![0u16; total];
        fill_chunks(&mut out, |offset, chunk| {
            self.fill_region_chunk(window, offset, chunk);
        });
        Ok(out)
    }

    /// Sequential variant of [`CompiledSchedule::slots_of_region`], exposed so
    /// benchmarks can separate the table speedup from the thread speedup.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] on a wrong-dimensional window.
    pub fn slots_of_region_sequential(&self, window: &BoxRegion) -> Result<Vec<u16>> {
        self.check_dim(window.dim())?;
        let total = usize::try_from(window.len()).map_err(|_| EngineError::WindowTooLarge {
            points: window.len(),
        })?;
        let mut out = vec![0u16; total];
        self.fill_region_chunk(window, 0, &mut out);
        Ok(out)
    }

    /// Fills `chunk` with the slots of the window points whose linear indices are
    /// `offset .. offset + chunk.len()`.
    ///
    /// The reduction is triangular: the quotients of rows `0..d-1` depend only on
    /// the first `d-1` coordinates, so along a window row (last axis varying) the
    /// slot sequence is the table segment of the row's coset prefix cycled with
    /// period `p = h_{d-1,d-1}`. Each row therefore costs one `O(d²)` prefix
    /// reduction plus a cyclic block copy — amortized memcpy speed per point
    /// instead of a full reduction per point.
    fn fill_region_chunk(&self, window: &BoxRegion, offset: usize, chunk: &mut [u16]) {
        let d = self.dim;
        let min = window.min().coords();
        let max = window.max().coords();
        let period = self.diag[d - 1] as usize;
        let row_len = (max[d - 1] - min[d - 1] + 1) as usize;
        // Decode the linear offset into the starting cursor position.
        let mut cursor = vec![0i64; d];
        let mut rest = offset as u64;
        for i in (0..d).rev() {
            let size = (max[i] - min[i] + 1) as u64;
            cursor[i] = min[i] + (rest % size) as i64;
            rest /= size;
        }
        let mut scratch = vec![0i64; d];
        let mut filled = 0usize;
        while filled < chunk.len() {
            // Reduce the row prefix (rows 0..d-1 of the HNF): afterwards
            // `scratch[..d-1]` is canonical and `scratch[d-1] = y - c` carries the
            // row's phase shift along the last axis.
            scratch.copy_from_slice(&cursor);
            for i in 0..d - 1 {
                let q = scratch[i].div_euclid(self.diag[i]);
                if q != 0 {
                    let row = &self.hnf[i * d..(i + 1) * d];
                    for (c, h) in scratch[i..].iter_mut().zip(&row[i..]) {
                        *c -= q * h;
                    }
                }
            }
            let mut prefix_rank = 0usize;
            for (c, radix) in scratch[..d - 1].iter().zip(&self.diag[..d - 1]) {
                prefix_rank = prefix_rank * *radix as usize + *c as usize;
            }
            let pattern = &self.table[prefix_rank * period..(prefix_rank + 1) * period];
            let mut phase = scratch[d - 1].rem_euclid(period as i64) as usize;

            // Cyclically copy the pattern over the rest of this window row (the
            // chunk may start or end mid-row).
            let row_pos = (cursor[d - 1] - min[d - 1]) as usize;
            let row_remaining = (row_len - row_pos).min(chunk.len() - filled);
            let row_out = &mut chunk[filled..filled + row_remaining];
            let mut copied = 0usize;
            while copied < row_out.len() {
                let n = (period - phase).min(row_out.len() - copied);
                row_out[copied..copied + n].copy_from_slice(&pattern[phase..phase + n]);
                copied += n;
                phase += n;
                if phase == period {
                    phase = 0;
                }
            }
            filled += row_remaining;

            // Advance the cursor to the start of the next window row.
            cursor[d - 1] = min[d - 1];
            for i in (0..d - 1).rev() {
                if cursor[i] < max[i] {
                    cursor[i] += 1;
                    break;
                }
                cursor[i] = min[i];
            }
            if d == 1 {
                break;
            }
        }
    }

    /// The slots of an arbitrary list of points, evaluated across worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] if any point has the wrong
    /// dimension.
    pub fn slots_of_points(&self, points: &[Point]) -> Result<Vec<u16>> {
        if let Some(bad) = points.iter().find(|p| p.dim() != self.dim) {
            return Err(EngineError::DimensionMismatch {
                expected: self.dim,
                found: bad.dim(),
            });
        }
        let mut out = vec![0u16; points.len()];
        fill_chunks(&mut out, |offset, chunk| {
            for (i, out) in chunk.iter_mut().enumerate() {
                *out = self.table[self.rank_of_coords(points[offset + i].coords())];
            }
        });
        Ok(out)
    }

    /// Counts, per slot, how many points of the window transmit in that slot —
    /// the batched counterpart of `latsched_core::verify::slot_histogram`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] on a wrong-dimensional window.
    pub fn slot_histogram(&self, window: &BoxRegion) -> Result<Vec<usize>> {
        let slots = self.slots_of_region(window)?;
        let mut histogram = vec![0usize; self.num_slots];
        for slot in slots {
            histogram[slot as usize] += 1;
        }
        Ok(histogram)
    }

    /// Exactly verifies collision-freedom over the whole infinite lattice, using
    /// this compiled table as the slot backend of the generic checker in
    /// `latsched_core::verify`.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches and lattice-arithmetic errors.
    pub fn verify(&self, deployment: &Deployment) -> Result<VerificationReport> {
        latsched_core::verify::verify_schedule_with(self, deployment).map_err(EngineError::Schedule)
    }

    fn check_dim(&self, found: usize) -> Result<()> {
        if found != self.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.dim,
                found,
            });
        }
        Ok(())
    }
}

impl SlotSource for CompiledSchedule {
    fn num_slots(&self) -> usize {
        self.num_slots
    }

    fn period(&self) -> &Sublattice {
        &self.period
    }

    fn slot_at(&self, p: &Point) -> latsched_core::Result<usize> {
        match self.slot_of(p) {
            Ok(slot) => Ok(slot as usize),
            Err(_) => Err(latsched_core::ScheduleError::DimensionMismatch {
                expected: self.dim,
                found: p.dim(),
            }),
        }
    }

    fn slots_at(&self, points: &[Point]) -> latsched_core::Result<Vec<usize>> {
        match self.slots_of_points(points) {
            Ok(slots) => Ok(slots.into_iter().map(usize::from).collect()),
            Err(EngineError::DimensionMismatch { expected, found }) => {
                Err(latsched_core::ScheduleError::DimensionMismatch { expected, found })
            }
            Err(EngineError::Schedule(e)) => Err(e),
            // slots_of_points has no other failure mode today; if one appears,
            // surface it as an overflow-class lattice error rather than
            // disguising it as a dimension mismatch.
            Err(_) => Err(latsched_core::ScheduleError::Lattice(
                latsched_lattice::LatticeError::Overflow,
            )),
        }
    }
}

impl fmt::Display for CompiledSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compiled schedule: {} slots over a {}-entry coset table ({})",
            self.num_slots,
            self.table.len(),
            self.period
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latsched_core::theorem1;
    use latsched_tiling::{find_tiling, shapes};

    fn moore_schedule() -> PeriodicSchedule {
        let tiling = find_tiling(&shapes::moore()).unwrap().unwrap();
        theorem1::schedule_from_tiling(&tiling)
    }

    #[test]
    fn compiled_agrees_with_reference_pointwise() {
        let schedule = moore_schedule();
        let compiled = CompiledSchedule::compile(&schedule).unwrap();
        assert_eq!(compiled.num_slots(), 9);
        assert_eq!(compiled.dim(), 2);
        assert_eq!(compiled.table_len(), 9);
        for x in -15..15 {
            for y in -15..15 {
                let p = Point::xy(x, y);
                assert_eq!(
                    compiled.slot_of(&p).unwrap() as usize,
                    schedule.slot_of(&p).unwrap(),
                    "disagreement at {p}"
                );
            }
        }
    }

    #[test]
    fn batch_apis_match_single_queries() {
        let schedule = moore_schedule();
        let compiled = CompiledSchedule::compile(&schedule).unwrap();
        let window = BoxRegion::new(Point::xy(-9, -5), Point::xy(12, 17)).unwrap();
        let batch = compiled.slots_of_region(&window).unwrap();
        let sequential = compiled.slots_of_region_sequential(&window).unwrap();
        assert_eq!(batch, sequential);
        let points = window.points();
        assert_eq!(batch.len(), points.len());
        for (p, &slot) in points.iter().zip(&batch) {
            assert_eq!(slot, compiled.slot_of(p).unwrap(), "at {p}");
        }
        let by_points = compiled.slots_of_points(&points).unwrap();
        assert_eq!(by_points, batch);
    }

    #[test]
    fn large_windows_take_the_parallel_path() {
        let schedule = moore_schedule();
        let compiled = CompiledSchedule::compile(&schedule).unwrap();
        // 128×128 = 16384 points > PARALLEL_THRESHOLD.
        let window = BoxRegion::square_window(2, 128).unwrap();
        let batch = compiled.slots_of_region(&window).unwrap();
        let sequential = compiled.slots_of_region_sequential(&window).unwrap();
        assert_eq!(batch, sequential);
        let histogram = compiled.slot_histogram(&window).unwrap();
        assert_eq!(histogram.iter().sum::<usize>(), 128 * 128);
        // The Moore period is 3Z×3Z and 128 is not a multiple of 3, but every slot
        // must still appear roughly 16384/9 times.
        assert!(histogram.iter().all(|&c| c > 1500));
    }

    #[test]
    fn verify_through_the_compiled_backend() {
        let tiling = find_tiling(&shapes::moore()).unwrap().unwrap();
        let schedule = theorem1::schedule_from_tiling(&tiling);
        let deployment = theorem1::deployment_for(&tiling);
        let compiled = CompiledSchedule::compile(&schedule).unwrap();
        let report = compiled.verify(&deployment).unwrap();
        assert!(report.collision_free());
        // Same verdict and same work as the reference checker.
        let reference = latsched_core::verify::verify_schedule(&schedule, &deployment).unwrap();
        assert_eq!(report, reference);
    }

    #[test]
    fn four_dimensional_tables_run_the_dyn_reducer() {
        // d = 4 has no const-generic fast path; the table must route queries
        // through the division-free DynReducer and still agree with the
        // reference schedule pointwise.
        let period = Sublattice::scaled(4, 2).unwrap();
        let slots: Vec<(Point, usize)> = period
            .coset_representatives()
            .into_iter()
            .enumerate()
            .map(|(slot, rep)| (rep, slot))
            .collect();
        let num_slots = slots.len();
        let schedule = PeriodicSchedule::new(period, num_slots, slots).unwrap();
        let compiled = CompiledSchedule::compile(&schedule).unwrap();
        assert_eq!(compiled.dim(), 4);
        assert_eq!(compiled.table_len(), 16);
        for x in -3..3 {
            for y in -3..3 {
                for z in -3..3 {
                    for w in -3..3 {
                        let p = Point::new(vec![x, y, z, w]);
                        assert_eq!(
                            compiled.slot_of(&p).unwrap() as usize,
                            schedule.slot_of(&p).unwrap(),
                            "disagreement at {p}"
                        );
                    }
                }
            }
        }
        // The batched region path agrees too.
        let window = BoxRegion::square_window(4, 5).unwrap();
        let batch = compiled.slots_of_region(&window).unwrap();
        for (p, &slot) in window.points().iter().zip(&batch) {
            assert_eq!(slot as usize, schedule.slot_of(p).unwrap(), "at {p}");
        }
    }

    #[test]
    fn may_transmit_matches_slot() {
        let compiled = CompiledSchedule::compile(&moore_schedule()).unwrap();
        let p = Point::xy(4, -7);
        let slot = compiled.slot_of(&p).unwrap() as u64;
        assert!(compiled.may_transmit(&p, slot).unwrap());
        assert!(compiled.may_transmit(&p, slot + 9).unwrap());
        assert!(!compiled.may_transmit(&p, slot + 1).unwrap());
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let compiled = CompiledSchedule::compile(&moore_schedule()).unwrap();
        assert!(compiled.slot_of(&Point::xyz(1, 2, 3)).is_err());
        assert!(compiled.slot_of_coords(&[1, 2, 3]).is_err());
        let window3 = BoxRegion::square_window(3, 4).unwrap();
        assert!(compiled.slots_of_region(&window3).is_err());
        assert!(compiled
            .slots_of_points(&[Point::xy(0, 0), Point::xyz(0, 0, 0)])
            .is_err());
        use latsched_core::SlotSource;
        assert!(compiled.slot_at(&Point::xyz(1, 2, 3)).is_err());
    }

    #[test]
    fn display_names_the_table() {
        let compiled = CompiledSchedule::compile(&moore_schedule()).unwrap();
        let text = compiled.to_string();
        assert!(text.contains("9 slots"));
        assert!(text.contains("9-entry"));
    }
}
