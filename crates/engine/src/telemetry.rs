//! Stage-scoped tracing and fast-path dispatch metrics for the whole engine
//! pipeline.
//!
//! The engine has six CI-gated kernel fast paths (analytic, partial-analytic,
//! scalar/Bernoulli seed lanes, the conflict-free loop shortcut and the
//! general loop) and five content-addressed cache tiers, but timing a sweep
//! from outside says nothing about *which* path each run took or where the
//! wall-clock went. This module is the engine's hand-rolled instrumentation
//! layer — no external tracing crates, just atomics and the exact-integer
//! histogram machinery from [`crate::aggregate`]:
//!
//! * **Counters** ([`Counter`]) — monotonic relaxed atomics: one per kernel
//!   dispatch path (every [`crate::run_frames`] call and every lane-kernel
//!   seed bumps exactly one, so the six dispatch counters sum to the number
//!   of simulated runs), plus steal-chunk claims, trace compilations,
//!   lane-batch/lane-run totals and per-tier cache hits/misses.
//! * **Stage histograms** — every [`Stage`] keeps a count, a total duration
//!   and a log₂-bucketed nanosecond histogram (the [`Log2Histogram`] bucket
//!   layout, held in atomics), so percentile queries cost nothing at record
//!   time.
//! * **Stage spans** ([`StageSpan`], from [`span`] / [`span_within`]) — RAII
//!   guards that record into the stage histogram *and* into a nested
//!   stage-time tree keyed by the thread-local span path, so a profile shows
//!   `sweep_run → sweep_task` nesting with per-node counts and totals.
//!   Worker threads have an empty span path of their own; [`span_within`]
//!   seeds the ancestor path so their spans still nest under the right
//!   parent in the tree.
//!
//! The registry ([`telemetry`]) is process-global and **disabled by
//! default**: every record site first does one relaxed [`AtomicBool`] load
//! and otherwise touches nothing — no clock read, no allocation, no atomic
//! write — so the instrumented hot paths cost nothing measurable when
//! telemetry is off (`BENCH_telemetry.json` gates the off/on overhead in
//! CI). Enabling is one call ([`TelemetryRegistry::set_enabled`]); the
//! `engine-cli` `--profile` and `--metrics-out` flags do it for a whole
//! invocation.
//!
//! Three export surfaces, all driven by [`TelemetrySnapshot`]:
//!
//! * [`TelemetryRegistry::snapshot`] + [`TelemetrySnapshot::since`] — the
//!   delta of a window of activity, embedded by [`crate::run_sweep`] /
//!   [`crate::run_search`] into their reports when telemetry is enabled;
//! * [`TelemetrySnapshot::to_json_value`] — the report-JSON form;
//! * `Display` — the human profile (`engine-cli sweep --profile`): dispatch
//!   mix, cache tiers, stage table and the nested stage-time tree;
//! * [`TelemetrySnapshot::to_prometheus`] — Prometheus text exposition
//!   (`latsched_*_total` counters and cumulative `_bucket{le=…}` histogram
//!   families) for `engine-cli --metrics-out FILE` and, later, the served
//!   daemon's metrics endpoint.

use crate::aggregate::{Log2Histogram, LOG2_BUCKETS};
use serde_json::Value;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One monotonic event counter of the registry.
///
/// The first six variants are the kernel dispatch paths: every simulated run
/// — a [`crate::run_frames`] call or one seed of a [`crate::run_frames_lanes`]
/// batch — bumps exactly one of them, so their sum over a window equals the
/// number of runs simulated in that window (property-tested in
/// `tests/sweep_parity.rs`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Counter {
    /// Runs replayed fully closed-form (analytic periodic/staggered/trace
    /// replay, including the idle no-traffic path).
    DispatchAnalytic,
    /// Runs replayed closed-form on clean slot classes with a loop only over
    /// the conflicted minority.
    DispatchPartialAnalytic,
    /// Seeds simulated by the 64-seed bit-sliced lane kernel under
    /// deterministic (periodic/staggered/trace) traffic.
    DispatchLaneScalar,
    /// Seeds simulated by the lane kernel under Bernoulli traffic (batched
    /// in-kernel draws, no trace compilation).
    DispatchLaneBernoulli,
    /// Runs through the slot loop's conflict-free shortcut (no interference
    /// passes).
    DispatchConflictFree,
    /// Runs through the general slot loop (bitset interference passes).
    DispatchGeneralLoop,
    /// Chunk claims taken from [`crate::parallel::steal_chunks`]'s atomic
    /// counter (one per `fetch_add` that yielded work).
    StealClaims,
    /// Traffic traces compiled ([`crate::TrafficTrace`] Bernoulli bitmaps and
    /// ALOHA MAC decision bitmaps, cached or not).
    TraceCompilations,
    /// Lane-kernel batches executed (each covers up to 64 seeds).
    LaneBatches,
    /// Seeds covered by lane-kernel batches (the sum of batch widths).
    LaneRuns,
    /// Schedule-tier cache lookups answered from the cache.
    ScheduleHits,
    /// Schedule-tier cache lookups that had to compile.
    ScheduleMisses,
    /// Adjacency-tier cache lookups answered from the cache.
    AdjacencyHits,
    /// Adjacency-tier cache lookups that had to build.
    AdjacencyMisses,
    /// Plan-tier cache lookups answered from the cache.
    PlanHits,
    /// Plan-tier cache lookups that had to build.
    PlanMisses,
    /// Trace-tier cache lookups answered from the cache.
    TraceHits,
    /// Trace-tier cache lookups that had to build.
    TraceMisses,
    /// Search-tier cache lookups answered from the cache.
    SearchHits,
    /// Search-tier cache lookups that had to run the search.
    SearchMisses,
}

/// Every counter, in declaration order (the dense index order of the
/// registry's atomic array).
pub const COUNTERS: [Counter; 20] = [
    Counter::DispatchAnalytic,
    Counter::DispatchPartialAnalytic,
    Counter::DispatchLaneScalar,
    Counter::DispatchLaneBernoulli,
    Counter::DispatchConflictFree,
    Counter::DispatchGeneralLoop,
    Counter::StealClaims,
    Counter::TraceCompilations,
    Counter::LaneBatches,
    Counter::LaneRuns,
    Counter::ScheduleHits,
    Counter::ScheduleMisses,
    Counter::AdjacencyHits,
    Counter::AdjacencyMisses,
    Counter::PlanHits,
    Counter::PlanMisses,
    Counter::TraceHits,
    Counter::TraceMisses,
    Counter::SearchHits,
    Counter::SearchMisses,
];

/// The six kernel dispatch-path counters, whose sum over a window equals the
/// number of runs simulated in that window.
pub const DISPATCH_COUNTERS: [Counter; 6] = [
    Counter::DispatchAnalytic,
    Counter::DispatchPartialAnalytic,
    Counter::DispatchLaneScalar,
    Counter::DispatchLaneBernoulli,
    Counter::DispatchConflictFree,
    Counter::DispatchGeneralLoop,
];

impl Counter {
    /// The snake_case name used in JSON snapshots and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DispatchAnalytic => "dispatch_analytic",
            Counter::DispatchPartialAnalytic => "dispatch_partial_analytic",
            Counter::DispatchLaneScalar => "dispatch_lane_scalar",
            Counter::DispatchLaneBernoulli => "dispatch_lane_bernoulli",
            Counter::DispatchConflictFree => "dispatch_conflict_free",
            Counter::DispatchGeneralLoop => "dispatch_general_loop",
            Counter::StealClaims => "steal_claims",
            Counter::TraceCompilations => "trace_compilations",
            Counter::LaneBatches => "lane_batches",
            Counter::LaneRuns => "lane_runs",
            Counter::ScheduleHits => "schedules_hits",
            Counter::ScheduleMisses => "schedules_misses",
            Counter::AdjacencyHits => "adjacencies_hits",
            Counter::AdjacencyMisses => "adjacencies_misses",
            Counter::PlanHits => "plans_hits",
            Counter::PlanMisses => "plans_misses",
            Counter::TraceHits => "traces_hits",
            Counter::TraceMisses => "traces_misses",
            Counter::SearchHits => "searches_hits",
            Counter::SearchMisses => "searches_misses",
        }
    }

    fn index(self) -> usize {
        COUNTERS.iter().position(|&c| c == self).expect("listed")
    }
}

/// The five content-addressed cache tiers, as telemetry label values; each
/// maps to its hit/miss [`Counter`] pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheTier {
    /// Shape → compiled Theorem 1 schedule ([`crate::ScheduleCache`]).
    Schedules,
    /// (window, shape) → interference adjacency ([`crate::AdjacencyCache`]).
    Adjacencies,
    /// (assignment, adjacency) → fused plan ([`crate::PlanCache`]).
    Plans,
    /// (plan, seed, load, slots) → compiled trace ([`crate::TraceCache`]).
    Traces,
    /// (scenario, objective) → ranked outcome ([`crate::SearchCache`]).
    Searches,
}

/// Every cache tier, in pipeline order.
pub const CACHE_TIERS: [CacheTier; 5] = [
    CacheTier::Schedules,
    CacheTier::Adjacencies,
    CacheTier::Plans,
    CacheTier::Traces,
    CacheTier::Searches,
];

impl CacheTier {
    /// The tier's Prometheus label value.
    pub fn name(self) -> &'static str {
        match self {
            CacheTier::Schedules => "schedules",
            CacheTier::Adjacencies => "adjacencies",
            CacheTier::Plans => "plans",
            CacheTier::Traces => "traces",
            CacheTier::Searches => "searches",
        }
    }

    /// The counter a lookup outcome on this tier bumps.
    pub fn counter(self, hit: bool) -> Counter {
        match (self, hit) {
            (CacheTier::Schedules, true) => Counter::ScheduleHits,
            (CacheTier::Schedules, false) => Counter::ScheduleMisses,
            (CacheTier::Adjacencies, true) => Counter::AdjacencyHits,
            (CacheTier::Adjacencies, false) => Counter::AdjacencyMisses,
            (CacheTier::Plans, true) => Counter::PlanHits,
            (CacheTier::Plans, false) => Counter::PlanMisses,
            (CacheTier::Traces, true) => Counter::TraceHits,
            (CacheTier::Traces, false) => Counter::TraceMisses,
            (CacheTier::Searches, true) => Counter::SearchHits,
            (CacheTier::Searches, false) => Counter::SearchMisses,
        }
    }
}

/// One instrumented pipeline stage; every stage has a duration histogram in
/// the registry and appears as a node of the span tree.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Stage {
    /// Theorem 1 schedule compilation (tiling search + table build).
    ScheduleCompile,
    /// Window interference-adjacency construction.
    AdjacencyBuild,
    /// Frame-plan fusion (per-slot CSR + conflict bitmasks).
    PlanFuse,
    /// Traffic-trace compilation (Bernoulli bitmaps / MAC decision bitmaps).
    TraceCompile,
    /// One cold schedule search (candidate enumeration + evaluation).
    SearchCompile,
    /// The single-threaded setup phase of a sweep (artifact resolution).
    SweepSetup,
    /// The parallel execution phase of a sweep.
    SweepRun,
    /// One stolen chunk of full-mode sweep runs on a worker.
    SweepTask,
    /// One stolen streaming band (runs folded into band accumulators).
    SweepBand,
    /// The merge of per-band streaming folds at the fan-in barrier.
    FoldMerge,
    /// One `FrameKernel` backend run from `latsched-sensornet`.
    FrameSimRun,
}

/// Every stage, in declaration order (the dense index order of the registry's
/// histogram array).
pub const STAGES: [Stage; 11] = [
    Stage::ScheduleCompile,
    Stage::AdjacencyBuild,
    Stage::PlanFuse,
    Stage::TraceCompile,
    Stage::SearchCompile,
    Stage::SweepSetup,
    Stage::SweepRun,
    Stage::SweepTask,
    Stage::SweepBand,
    Stage::FoldMerge,
    Stage::FrameSimRun,
];

impl Stage {
    /// The snake_case name used in JSON snapshots and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::ScheduleCompile => "schedule_compile",
            Stage::AdjacencyBuild => "adjacency_build",
            Stage::PlanFuse => "plan_fuse",
            Stage::TraceCompile => "trace_compile",
            Stage::SearchCompile => "search_compile",
            Stage::SweepSetup => "sweep_setup",
            Stage::SweepRun => "sweep_run",
            Stage::SweepTask => "sweep_task",
            Stage::SweepBand => "sweep_band",
            Stage::FoldMerge => "fold_merge",
            Stage::FrameSimRun => "framesim_run",
        }
    }

    fn index(self) -> usize {
        STAGES.iter().position(|&s| s == self).expect("listed")
    }
}

/// The atomic duration accumulator of one stage: observation count, total
/// nanoseconds, and the [`Log2Histogram`] bucket layout held in atomics.
struct StageCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    buckets: [AtomicU64; LOG2_BUCKETS],
}

impl StageCell {
    fn new() -> Self {
        StageCell {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[Log2Histogram::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }
}

/// One node of the nested stage-time tree: how often a stage closed at this
/// exact span path, and the total time spent there (children's time is *not*
/// subtracted — a parent span covers its children).
#[derive(Clone, Default, PartialEq, Debug)]
pub struct StageTreeNode {
    /// Spans closed at this path.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
    /// Child stages nested under this node.
    pub children: BTreeMap<Stage, StageTreeNode>,
}

impl StageTreeNode {
    /// Records one closed span along `path` under this node.
    fn record(&mut self, path: &[Stage], ns: u64) {
        match path.split_first() {
            None => {
                self.count += 1;
                self.total_ns = self.total_ns.saturating_add(ns);
            }
            Some((head, rest)) => self.children.entry(*head).or_default().record(rest, ns),
        }
    }

    /// The node-wise difference against an earlier snapshot of the same tree,
    /// dropping nodes with no activity in the window.
    fn since(&self, earlier: &StageTreeNode) -> StageTreeNode {
        let mut children = BTreeMap::new();
        for (stage, node) in &self.children {
            let delta = match earlier.children.get(stage) {
                Some(before) => node.since(before),
                None => node.clone(),
            };
            if delta.count > 0 || !delta.children.is_empty() {
                children.insert(*stage, delta);
            }
        }
        StageTreeNode {
            count: self.count - earlier.count,
            total_ns: self.total_ns.saturating_sub(earlier.total_ns),
            children,
        }
    }

    fn to_json_children(&self) -> Value {
        let items = self
            .children
            .iter()
            .map(|(stage, node)| {
                let mut map = BTreeMap::new();
                map.insert("stage".to_string(), Value::from(stage.name()));
                map.insert("count".to_string(), Value::from(node.count));
                map.insert("total_ns".to_string(), Value::from(node.total_ns));
                map.insert("children".to_string(), node.to_json_children());
                Value::Object(map)
            })
            .collect();
        Value::Array(items)
    }
}

/// The process-global instrumentation registry: an enable flag, the counter
/// array, per-stage duration histograms and the nested span tree. Obtain it
/// with [`telemetry`].
pub struct TelemetryRegistry {
    enabled: AtomicBool,
    counters: [AtomicU64; COUNTERS.len()],
    stages: [StageCell; STAGES.len()],
    tree: Mutex<StageTreeNode>,
}

thread_local! {
    /// The current span path of this thread (innermost open span last).
    static SPAN_PATH: RefCell<Vec<Stage>> = const { RefCell::new(Vec::new()) };
}

impl TelemetryRegistry {
    fn new() -> Self {
        TelemetryRegistry {
            enabled: AtomicBool::new(false),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            stages: std::array::from_fn(|_| StageCell::new()),
            tree: Mutex::new(StageTreeNode::default()),
        }
    }

    /// Whether recording is on (one relaxed load — the fast check every
    /// instrumentation site does first).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off, process-wide. Counters are monotonic and
    /// never reset; consumers window them with [`TelemetrySnapshot::since`].
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Adds `n` to a counter (no-op while disabled).
    #[inline]
    pub fn count(&self, counter: Counter, n: u64) {
        if self.enabled() {
            self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value of a counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Records one closed span: `path` is the full span path (the closing
    /// stage last), `ns` its duration.
    fn record_span(&self, path: &[Stage], ns: u64) {
        let stage = *path.last().expect("span path is never empty");
        self.stages[stage.index()].record(ns);
        self.tree
            .lock()
            .expect("telemetry tree poisoned")
            .record(path, ns);
    }

    /// A point-in-time snapshot of every counter, stage histogram and the
    /// span tree. Pair two snapshots with [`TelemetrySnapshot::since`] to
    /// window one sweep or search.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed));
        let stages = std::array::from_fn(|i| {
            let cell = &self.stages[i];
            let mut buckets = [0u64; LOG2_BUCKETS];
            for (b, atomic) in buckets.iter_mut().zip(&cell.buckets) {
                *b = atomic.load(Ordering::Relaxed);
            }
            StageStats {
                count: cell.count.load(Ordering::Relaxed),
                total_ns: cell.total_ns.load(Ordering::Relaxed),
                histogram: Log2Histogram::from_buckets(buckets),
            }
        });
        let tree = self.tree.lock().expect("telemetry tree poisoned").clone();
        TelemetrySnapshot {
            counters,
            stages,
            tree,
        }
    }
}

/// The process-global registry every instrumentation site records into.
pub fn telemetry() -> &'static TelemetryRegistry {
    static REGISTRY: OnceLock<TelemetryRegistry> = OnceLock::new();
    REGISTRY.get_or_init(TelemetryRegistry::new)
}

/// An RAII stage span: created by [`span`] / [`span_within`], records its
/// duration (and its position in the span tree) into the global registry when
/// dropped. A span created while telemetry is disabled is inert — it reads no
/// clock and records nothing.
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct StageSpan {
    /// `None` while disabled; otherwise the start instant and how many path
    /// entries this span pushed (1, plus any seeded ancestors).
    armed: Option<(Instant, usize)>,
}

impl StageSpan {
    const INERT: StageSpan = StageSpan { armed: None };
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        if let Some((start, pushed)) = self.armed.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            SPAN_PATH.with(|path| {
                let mut path = path.borrow_mut();
                telemetry().record_span(&path, ns);
                let keep = path.len().saturating_sub(pushed);
                path.truncate(keep);
            });
        }
    }
}

/// Opens a stage span nested under whatever spans are already open on this
/// thread (no-op while telemetry is disabled).
#[inline]
pub fn span(stage: Stage) -> StageSpan {
    span_within(&[], stage)
}

/// Opens a stage span, seeding `ancestors` as the span path first **if this
/// thread has no open spans**. Worker threads spawned inside a parallel stage
/// have fresh (empty) span paths; seeding lets their spans nest under the
/// logical parent (e.g. a `sweep_task` under `sweep_run`) instead of
/// appearing as roots. On threads that already have open spans the ancestors
/// are ignored and the span nests normally.
#[inline]
pub fn span_within(ancestors: &[Stage], stage: Stage) -> StageSpan {
    if !telemetry().enabled() {
        return StageSpan::INERT;
    }
    let pushed = SPAN_PATH.with(|path| {
        let mut path = path.borrow_mut();
        let mut pushed = 1;
        if path.is_empty() && !ancestors.is_empty() {
            path.extend_from_slice(ancestors);
            pushed += ancestors.len();
        }
        path.push(stage);
        pushed
    });
    StageSpan {
        armed: Some((Instant::now(), pushed)),
    }
}

/// The frozen duration statistics of one stage.
#[derive(Clone, PartialEq, Debug)]
pub struct StageStats {
    /// Spans recorded.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
    /// Log₂-bucketed span durations (nanoseconds).
    pub histogram: Log2Histogram,
}

impl StageStats {
    fn since(&self, earlier: &StageStats) -> StageStats {
        let mut buckets = [0u64; LOG2_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.histogram.count(i) - earlier.histogram.count(i);
        }
        StageStats {
            count: self.count - earlier.count,
            total_ns: self.total_ns.saturating_sub(earlier.total_ns),
            histogram: Log2Histogram::from_buckets(buckets),
        }
    }
}

/// A frozen copy of the registry: counters, per-stage duration statistics and
/// the span tree. Two snapshots subtract ([`TelemetrySnapshot::since`]) to
/// window one sweep/search, which is exactly what [`crate::SweepReport`] and
/// [`crate::SearchReport`] embed when telemetry is enabled.
#[derive(Clone, PartialEq, Debug)]
pub struct TelemetrySnapshot {
    counters: [u64; COUNTERS.len()],
    stages: [StageStats; STAGES.len()],
    /// The nested stage-time tree (root children are top-level stages).
    pub tree: StageTreeNode,
}

impl TelemetrySnapshot {
    /// The value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// The duration statistics of one stage.
    pub fn stage(&self, stage: Stage) -> &StageStats {
        &self.stages[stage.index()]
    }

    /// The sum of the six dispatch-path counters — the number of simulated
    /// runs covered by this snapshot (or window).
    pub fn dispatch_total(&self) -> u64 {
        DISPATCH_COUNTERS.iter().map(|&c| self.counter(c)).sum()
    }

    /// The counter/stage/tree movement since an earlier snapshot of the same
    /// registry (all counters are monotonic, so plain subtraction windows a
    /// sweep exactly; concurrent activity in the same process lands in the
    /// same window).
    #[must_use]
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: std::array::from_fn(|i| self.counters[i] - earlier.counters[i]),
            stages: std::array::from_fn(|i| self.stages[i].since(&earlier.stages[i])),
            tree: self.tree.since(&earlier.tree),
        }
    }

    /// The snapshot as a JSON object: a flat `counters` map, per-stage
    /// `{count, total_ns, histogram}` objects (stages with no spans are
    /// omitted), and the nested `tree`.
    pub fn to_json_value(&self) -> Value {
        let mut counters = BTreeMap::new();
        for c in COUNTERS {
            counters.insert(c.name().to_string(), Value::from(self.counter(c)));
        }
        let mut stages = BTreeMap::new();
        for s in STAGES {
            let stats = self.stage(s);
            if stats.count == 0 {
                continue;
            }
            let mut map = BTreeMap::new();
            map.insert("count".to_string(), Value::from(stats.count));
            map.insert("total_ns".to_string(), Value::from(stats.total_ns));
            map.insert("histogram".to_string(), stats.histogram.to_json_value());
            stages.insert(s.name().to_string(), Value::Object(map));
        }
        let mut map = BTreeMap::new();
        map.insert("counters".to_string(), Value::Object(counters));
        map.insert("stages".to_string(), Value::Object(stages));
        map.insert("tree".to_string(), self.tree.to_json_children());
        Value::Object(map)
    }

    /// The snapshot in Prometheus text exposition format: counter families
    /// (`latsched_dispatch_runs_total{path=…}`,
    /// `latsched_cache_lookups_total{tier=…,outcome=…}`, the scalar
    /// `latsched_*_total` counters) and one cumulative histogram family
    /// (`latsched_stage_duration_ns{stage=…}` with `_bucket{le=…}`, `_sum`
    /// and `_count` series).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# TYPE latsched_dispatch_runs_total counter\n");
        for (c, label) in DISPATCH_COUNTERS.iter().zip([
            "analytic",
            "partial_analytic",
            "lane_scalar",
            "lane_bernoulli",
            "conflict_free",
            "general_loop",
        ]) {
            let _ = writeln!(
                out,
                "latsched_dispatch_runs_total{{path=\"{label}\"}} {}",
                self.counter(*c)
            );
        }
        for (family, counter) in [
            ("latsched_steal_claims_total", Counter::StealClaims),
            (
                "latsched_trace_compilations_total",
                Counter::TraceCompilations,
            ),
            ("latsched_lane_batches_total", Counter::LaneBatches),
            ("latsched_lane_runs_total", Counter::LaneRuns),
        ] {
            let _ = writeln!(
                out,
                "# TYPE {family} counter\n{family} {}",
                self.counter(counter)
            );
        }
        out.push_str("# TYPE latsched_cache_lookups_total counter\n");
        for tier in CACHE_TIERS {
            for (outcome, hit) in [("hit", true), ("miss", false)] {
                let _ = writeln!(
                    out,
                    "latsched_cache_lookups_total{{tier=\"{}\",outcome=\"{outcome}\"}} {}",
                    tier.name(),
                    self.counter(tier.counter(hit))
                );
            }
        }
        out.push_str("# TYPE latsched_stage_duration_ns histogram\n");
        for stage in STAGES {
            let stats = self.stage(stage);
            if stats.count == 0 {
                continue;
            }
            let mut cumulative = 0u64;
            for bucket in 0..LOG2_BUCKETS {
                let n = stats.histogram.count(bucket);
                if n == 0 {
                    continue;
                }
                cumulative += n;
                // Bucket b covers values < 2^b, so its inclusive `le` upper
                // bound is 2^b - 1 (bucket 0 holds the exact value 0).
                let le = if bucket >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bucket) - 1
                };
                let _ = writeln!(
                    out,
                    "latsched_stage_duration_ns_bucket{{stage=\"{}\",le=\"{le}\"}} {cumulative}",
                    stage.name()
                );
            }
            let _ = writeln!(
                out,
                "latsched_stage_duration_ns_bucket{{stage=\"{}\",le=\"+Inf\"}} {}",
                stage.name(),
                stats.count
            );
            let _ = writeln!(
                out,
                "latsched_stage_duration_ns_sum{{stage=\"{}\"}} {}",
                stage.name(),
                stats.total_ns
            );
            let _ = writeln!(
                out,
                "latsched_stage_duration_ns_count{{stage=\"{}\"}} {}",
                stage.name(),
                stats.count
            );
        }
        out
    }
}

/// Formats nanoseconds with an adaptive unit for the human profile.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl StageTreeNode {
    fn fmt_children(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        for (stage, node) in &self.children {
            let mean = node.total_ns.checked_div(node.count).unwrap_or(0);
            writeln!(
                f,
                "  {:indent$}{:width$} {:>8} × {:>9}  (mean {})",
                "",
                stage.name(),
                node.count,
                fmt_ns(node.total_ns),
                fmt_ns(mean),
                indent = depth * 2,
                width = 24usize.saturating_sub(depth * 2),
            )?;
            node.fmt_children(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for TelemetrySnapshot {
    /// The human profile printed by `engine-cli … --profile`: the fast-path
    /// dispatch mix (summing to the simulated run count), scalar counters,
    /// per-tier cache lookups, a stage summary table and the nested
    /// stage-time tree.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fast-path dispatch mix")?;
        for (c, label) in DISPATCH_COUNTERS.iter().zip([
            "analytic",
            "partial-analytic",
            "lane-scalar",
            "lane-bernoulli",
            "conflict-free",
            "general-loop",
        ]) {
            writeln!(f, "  {label:<18} {:>10}", self.counter(*c))?;
        }
        writeln!(f, "  {:<18} {:>10}", "total runs", self.dispatch_total())?;
        writeln!(
            f,
            "counters: steal_claims={} trace_compilations={} lane_batches={} lane_runs={}",
            self.counter(Counter::StealClaims),
            self.counter(Counter::TraceCompilations),
            self.counter(Counter::LaneBatches),
            self.counter(Counter::LaneRuns),
        )?;
        writeln!(f, "cache tiers (hits/misses)")?;
        for tier in CACHE_TIERS {
            writeln!(
                f,
                "  {:<13} {:>6} / {:<6}",
                tier.name(),
                self.counter(tier.counter(true)),
                self.counter(tier.counter(false)),
            )?;
        }
        writeln!(f, "stages (count · total · mean · p99≥)")?;
        for stage in STAGES {
            let stats = self.stage(stage);
            if stats.count == 0 {
                continue;
            }
            let p99 = stats.histogram.percentile_lower_bound(0.99).unwrap_or(0);
            writeln!(
                f,
                "  {:<17} {:>8} · {:>9} · {:>9} · {:>9}",
                stage.name(),
                stats.count,
                fmt_ns(stats.total_ns),
                fmt_ns(stats.total_ns / stats.count),
                fmt_ns(p99),
            )?;
        }
        writeln!(f, "stage tree")?;
        self.tree.fmt_children(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A snapshot with chosen counter values and one recorded stage, built
    /// without touching the global registry.
    fn synthetic(counts: &[(Counter, u64)], stage_ns: &[(Stage, u64)]) -> TelemetrySnapshot {
        let registry = TelemetryRegistry::new();
        registry.set_enabled(true);
        for &(c, n) in counts {
            registry.count(c, n);
        }
        for &(s, ns) in stage_ns {
            registry.record_span(&[s], ns);
        }
        registry.snapshot()
    }

    #[test]
    fn counters_are_inert_while_disabled() {
        let registry = TelemetryRegistry::new();
        registry.count(Counter::DispatchAnalytic, 5);
        assert_eq!(registry.counter(Counter::DispatchAnalytic), 0);
        registry.set_enabled(true);
        registry.count(Counter::DispatchAnalytic, 5);
        assert_eq!(registry.counter(Counter::DispatchAnalytic), 5);
        registry.set_enabled(false);
        registry.count(Counter::DispatchAnalytic, 5);
        assert_eq!(registry.counter(Counter::DispatchAnalytic), 5);
    }

    #[test]
    fn snapshot_deltas_window_counters_and_stages() {
        let registry = TelemetryRegistry::new();
        registry.set_enabled(true);
        registry.count(Counter::DispatchGeneralLoop, 3);
        registry.record_span(&[Stage::SweepRun], 1000);
        let before = registry.snapshot();
        registry.count(Counter::DispatchGeneralLoop, 4);
        registry.count(Counter::StealClaims, 2);
        registry.record_span(&[Stage::SweepRun], 3000);
        registry.record_span(&[Stage::SweepRun, Stage::SweepTask], 2000);
        let delta = registry.snapshot().since(&before);
        assert_eq!(delta.counter(Counter::DispatchGeneralLoop), 4);
        assert_eq!(delta.counter(Counter::StealClaims), 2);
        assert_eq!(delta.dispatch_total(), 4);
        assert_eq!(delta.stage(Stage::SweepRun).count, 1);
        assert_eq!(delta.stage(Stage::SweepRun).total_ns, 3000);
        assert_eq!(delta.stage(Stage::SweepTask).count, 1);
        // The tree delta keeps only the window's activity, nested.
        let run = delta.tree.children.get(&Stage::SweepRun).expect("node");
        assert_eq!((run.count, run.total_ns), (1, 3000));
        let task = run.children.get(&Stage::SweepTask).expect("nested");
        assert_eq!((task.count, task.total_ns), (1, 2000));
    }

    #[test]
    fn span_tree_nests_by_thread_local_path() {
        let registry = TelemetryRegistry::new();
        // Simulate what spans record: a sweep_run containing two tasks, one
        // of which compiled a trace.
        registry.record_span(&[Stage::SweepRun, Stage::SweepTask], 10);
        registry.record_span(&[Stage::SweepRun, Stage::SweepTask, Stage::TraceCompile], 4);
        registry.record_span(&[Stage::SweepRun, Stage::SweepTask], 20);
        registry.record_span(&[Stage::SweepRun], 50);
        let snap = registry.snapshot();
        let run = snap.tree.children.get(&Stage::SweepRun).expect("root");
        assert_eq!((run.count, run.total_ns), (1, 50));
        let task = run.children.get(&Stage::SweepTask).expect("child");
        assert_eq!((task.count, task.total_ns), (2, 30));
        let compile = task.children.get(&Stage::TraceCompile).expect("leaf");
        assert_eq!((compile.count, compile.total_ns), (1, 4));
    }

    #[test]
    fn json_snapshot_has_counters_stages_and_tree() {
        let snap = synthetic(
            &[(Counter::DispatchAnalytic, 64), (Counter::TraceHits, 7)],
            &[(Stage::SweepSetup, 1500)],
        );
        let json = snap.to_json_value();
        let text = serde_json::to_string(&json);
        assert!(text.contains("\"dispatch_analytic\":64"));
        assert!(text.contains("\"traces_hits\":7"));
        assert!(text.contains("\"sweep_setup\""));
        assert!(text.contains("\"tree\""));
        // Stages with no spans are omitted from the stage map.
        assert!(!text.contains("\"search_compile\""));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let snap = synthetic(
            &[
                (Counter::DispatchAnalytic, 64),
                (Counter::StealClaims, 12),
                (Counter::ScheduleHits, 3),
            ],
            &[(Stage::SweepRun, 1000), (Stage::SweepRun, 3000)],
        );
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE latsched_dispatch_runs_total counter"));
        assert!(text.contains("latsched_dispatch_runs_total{path=\"analytic\"} 64"));
        assert!(text.contains("latsched_steal_claims_total 12"));
        assert!(text.contains("latsched_cache_lookups_total{tier=\"schedules\",outcome=\"hit\"} 3"));
        assert!(text.contains("# TYPE latsched_stage_duration_ns histogram"));
        // 1000 ns lands in bucket 10 (le 1023), 3000 ns in bucket 12 (le
        // 4095); the bucket series is cumulative and closed by +Inf.
        assert!(
            text.contains("latsched_stage_duration_ns_bucket{stage=\"sweep_run\",le=\"1023\"} 1")
        );
        assert!(
            text.contains("latsched_stage_duration_ns_bucket{stage=\"sweep_run\",le=\"4095\"} 2")
        );
        assert!(
            text.contains("latsched_stage_duration_ns_bucket{stage=\"sweep_run\",le=\"+Inf\"} 2")
        );
        assert!(text.contains("latsched_stage_duration_ns_sum{stage=\"sweep_run\"} 4000"));
        assert!(text.contains("latsched_stage_duration_ns_count{stage=\"sweep_run\"} 2"));
        // Every line is `name{labels} value` or a comment.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(_, v)| v.parse::<u64>().is_ok()),
                "unparseable line: {line}"
            );
        }
    }

    #[test]
    fn display_profile_lists_mix_tiers_and_tree() {
        let snap = synthetic(
            &[
                (Counter::DispatchAnalytic, 60),
                (Counter::DispatchGeneralLoop, 4),
            ],
            &[(Stage::SweepRun, 2_500_000)],
        );
        let text = snap.to_string();
        assert!(text.contains("fast-path dispatch mix"));
        assert!(text.contains("total runs"));
        assert!(text.contains("64"));
        assert!(text.contains("schedules"));
        assert!(text.contains("sweep_run"));
        assert!(text.contains("2.50ms"));
    }

    #[test]
    fn inert_spans_do_not_touch_the_path() {
        // The global registry is disabled by default in this process: spans
        // must be inert and leave no thread-local state behind.
        assert!(!telemetry().enabled());
        {
            let _outer = span(Stage::SweepRun);
            let _inner = span_within(&[Stage::SweepRun], Stage::SweepTask);
        }
        SPAN_PATH.with(|p| assert!(p.borrow().is_empty()));
    }

    #[test]
    fn counter_and_stage_names_are_unique() {
        let mut names: Vec<&str> = COUNTERS.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTERS.len());
        let mut stages: Vec<&str> = STAGES.iter().map(|s| s.name()).collect();
        stages.sort_unstable();
        stages.dedup();
        assert_eq!(stages.len(), STAGES.len());
        for (i, c) in COUNTERS.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, s) in STAGES.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
