//! Streaming sweep statistics: online per-axis folds of kernel counters.
//!
//! A full-mode sweep materializes one [`SweepRunReport`] per grid point, so on
//! million-run grids the *report* — not the kernel — becomes the memory
//! ceiling. This module provides the streaming alternative: every statistic is
//! a **commutative monoid fold** over [`KernelCounts`], so runs can be folded
//! into accumulators in any order, worker-locally, and merged at a barrier —
//! the same communication-thrifty aggregation discipline congested-clique
//! algorithms use to combine per-node summaries. Dropping per-run detail loses
//! nothing that cannot be regenerated: the counter-based RNG makes every run
//! independently replayable from its grid coordinates.
//!
//! The pieces:
//!
//! * [`FieldFold`] — count/sum/sum-of-squares/min/max of one counter field,
//!   kept in exact integer arithmetic (`u64` sums, `u128` squares) so merges
//!   are associative *bit for bit*: a streaming fold equals a sequential fold
//!   of the same runs exactly, not just approximately. Mean and variance are
//!   derived on demand.
//! * [`Log2Histogram`] — a fixed-bucket base-2 histogram (bucket `b ≥ 1`
//!   covers `[2^(b-1), 2^b)`; bucket 0 is the exact value 0) with exact
//!   percentile queries at the stored-bucket level: `percentile(q)` returns
//!   the bucket containing the `⌈q·total⌉`-th smallest observation.
//! * [`RatioHistogram`] — 65 fixed buckets over `[0, 1]` (bucket
//!   `⌊64·delivered/generated⌋`, computed in integer arithmetic), for per-run
//!   delivery ratios.
//! * [`OnlineFold`] — one fold per [`KernelCounts`] field plus a per-run
//!   mean-delivery-latency histogram and a delivery-ratio histogram.
//! * [`GroupSpec`] / [`GroupBy`] — the grouping engine: folds a sweep grid
//!   onto any subset of its axes (window, traffic, retries, seed) in
//!   O(groups) memory instead of O(runs), producing stable
//!   [`GroupReport`]s. [`fold_full_report`] applies the same grouping to a
//!   full-mode report's `per_run` list, which is how streaming results are
//!   property-tested for exact parity.

use crate::error::Result;
use crate::scenario::invalid;
use crate::simkernel::KernelCounts;
use crate::sweep::{SweepRunReport, SweepSpec};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;

/// The [`KernelCounts`] field names, in declaration order — the order every
/// per-field array in this module uses.
pub const COUNT_FIELDS: [&str; 11] = [
    "packets_generated",
    "packets_delivered",
    "packets_dropped",
    "packets_pending",
    "transmissions",
    "receptions",
    "collisions",
    "total_latency",
    "tx_slots",
    "rx_slots",
    "idle_slots",
];

/// The values of one [`KernelCounts`] in [`COUNT_FIELDS`] order.
pub fn count_values(c: &KernelCounts) -> [u64; 11] {
    [
        c.packets_generated,
        c.packets_delivered,
        c.packets_dropped,
        c.packets_pending,
        c.transmissions,
        c.receptions,
        c.collisions,
        c.total_latency,
        c.tx_slots,
        c.rx_slots,
        c.idle_slots,
    ]
}

/// The online fold of one counter field: exact integer sum, sum of squares,
/// min and max. Merging two folds is associative and commutative bit for bit,
/// so per-worker partial folds combine into exactly the sequential result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FieldFold {
    /// Sum of observations.
    pub sum: u64,
    /// Sum of squared observations (exact: observations are `u64`, squares
    /// accumulate in `u128`).
    pub sum_sq: u128,
    /// Smallest observation (`u64::MAX` while empty).
    pub min: u64,
    /// Largest observation (0 while empty).
    pub max: u64,
}

impl Default for FieldFold {
    fn default() -> Self {
        FieldFold {
            sum: 0,
            sum_sq: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl FieldFold {
    /// Folds one observation in.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.sum += v;
        self.sum_sq += u128::from(v) * u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another fold in (the monoid operation).
    pub fn merge(&mut self, other: &FieldFold) {
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean over `count` observations (0 for an empty fold).
    pub fn mean(&self, count: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        self.sum as f64 / count as f64
    }

    /// Population variance over `count` observations, derived from the exact
    /// integer sums (0 for an empty fold; clamped at 0 against rounding).
    pub fn variance(&self, count: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let mean = self.mean(count);
        (self.sum_sq as f64 / count as f64 - mean * mean).max(0.0)
    }

    /// The fold as a JSON object (min reported as 0 when empty).
    pub fn to_json_value(&self, count: u64) -> Value {
        let mut map = BTreeMap::new();
        map.insert("sum".to_string(), Value::from(self.sum));
        map.insert(
            "min".to_string(),
            Value::from(if count == 0 { 0 } else { self.min }),
        );
        map.insert("max".to_string(), Value::from(self.max));
        map.insert("mean".to_string(), Value::from(self.mean(count)));
        map.insert("variance".to_string(), Value::from(self.variance(count)));
        Value::Object(map)
    }
}

/// Number of buckets of the base-2 histogram: bucket 0 for the exact value 0,
/// buckets 1..=64 for the 64 possible bit lengths of a nonzero `u64`.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-bucket base-2 histogram over `u64` observations.
///
/// Bucket 0 holds the exact value 0; bucket `b ≥ 1` covers `[2^(b-1), 2^b)`.
/// Merging is element-wise addition, so the histogram is a commutative monoid
/// and percentile queries are *exact at the stored-bucket level*: the answer
/// is the bucket provably containing the requested order statistic, never an
/// interpolation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; LOG2_BUCKETS],
        }
    }
}

impl Log2Histogram {
    /// The bucket index of a value.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// A histogram from a raw bucket array (the layout [`Log2Histogram`]
    /// itself stores) — used by the telemetry registry, which accumulates
    /// buckets in atomics and freezes them into histograms at snapshot time.
    pub fn from_buckets(buckets: [u64; LOG2_BUCKETS]) -> Self {
        Log2Histogram { buckets }
    }

    /// The smallest value a bucket covers.
    pub fn bucket_lower_bound(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else {
            1u64 << (bucket - 1)
        }
    }

    /// Folds one observation in.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Merges another histogram in (element-wise addition).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The count of one bucket.
    pub fn count(&self, bucket: usize) -> u64 {
        self.buckets[bucket]
    }

    /// The bucket containing the `⌈q·total⌉`-th smallest observation
    /// (`q` clamped to `[0, 1]`; `None` when the histogram is empty).
    pub fn percentile_bucket(&self, q: f64) -> Option<usize> {
        percentile_over(&self.buckets, q)
    }

    /// The lower bound of the percentile bucket (`None` when empty) — an
    /// exact statement "the q-quantile is at least this value".
    pub fn percentile_lower_bound(&self, q: f64) -> Option<u64> {
        self.percentile_bucket(q).map(Self::bucket_lower_bound)
    }

    /// The histogram as a sparse JSON array of `[bucket, count]` pairs.
    pub fn to_json_value(&self) -> Value {
        sparse_buckets_json(&self.buckets)
    }
}

/// Number of ratio buckets: `⌊64·d/g⌋` ranges over `0..=64` for `d ≤ g`.
pub const RATIO_BUCKETS: usize = 65;

/// A fixed-bucket histogram over per-run ratios in `[0, 1]` (delivery ratios:
/// delivered / generated).
///
/// Bucket indices are computed in integer arithmetic — `⌊64·d/g⌋` — so the
/// histogram is exactly reproducible regardless of fold order. Runs with no
/// generated packets have no defined ratio and are counted separately in
/// [`RatioHistogram::undefined`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RatioHistogram {
    buckets: [u64; RATIO_BUCKETS],
    /// Observations with a zero denominator (no defined ratio).
    pub undefined: u64,
}

impl Default for RatioHistogram {
    fn default() -> Self {
        RatioHistogram {
            buckets: [0; RATIO_BUCKETS],
            undefined: 0,
        }
    }
}

impl RatioHistogram {
    /// The bucket index of `numerator / denominator` (requires
    /// `numerator ≤ denominator`).
    #[inline]
    pub fn bucket_of(numerator: u64, denominator: u64) -> usize {
        debug_assert!(numerator <= denominator && denominator > 0);
        ((u128::from(numerator) * (RATIO_BUCKETS as u128 - 1)) / u128::from(denominator)) as usize
    }

    /// The smallest ratio a bucket covers.
    pub fn bucket_lower_bound(bucket: usize) -> f64 {
        bucket as f64 / (RATIO_BUCKETS as f64 - 1.0)
    }

    /// Folds one ratio observation in (`numerator ≤ denominator`; a zero
    /// denominator counts as undefined).
    #[inline]
    pub fn observe(&mut self, numerator: u64, denominator: u64) {
        if denominator == 0 {
            self.undefined += 1;
        } else {
            self.buckets[Self::bucket_of(numerator, denominator)] += 1;
        }
    }

    /// Merges another histogram in (element-wise addition).
    pub fn merge(&mut self, other: &RatioHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.undefined += other.undefined;
    }

    /// Total defined-ratio observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The count of one bucket.
    pub fn count(&self, bucket: usize) -> u64 {
        self.buckets[bucket]
    }

    /// The bucket containing the `⌈q·total⌉`-th smallest defined ratio
    /// (`None` when no ratio is defined).
    pub fn percentile_bucket(&self, q: f64) -> Option<usize> {
        percentile_over(&self.buckets, q)
    }

    /// The lower bound of the percentile bucket (`None` when empty).
    pub fn percentile_lower_bound(&self, q: f64) -> Option<f64> {
        self.percentile_bucket(q).map(Self::bucket_lower_bound)
    }

    /// The histogram as a sparse JSON array of `[bucket, count]` pairs.
    pub fn to_json_value(&self) -> Value {
        sparse_buckets_json(&self.buckets)
    }
}

/// The bucket containing the `⌈q·total⌉`-th smallest observation of a bucket
/// array, by one cumulative walk.
fn percentile_over(buckets: &[u64], q: f64) -> Option<usize> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(i);
        }
    }
    Some(buckets.len() - 1)
}

/// Sparse `[bucket, count]` JSON encoding shared by both histograms.
fn sparse_buckets_json(buckets: &[u64]) -> Value {
    Value::Array(
        buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Array(vec![Value::from(i), Value::from(c)]))
            .collect(),
    )
}

/// The full online accumulator of one run group: a [`FieldFold`] per
/// [`KernelCounts`] field, a per-run mean-delivery-latency histogram and a
/// per-run delivery-ratio histogram.
///
/// All parts are commutative monoids over exact integers, so
/// [`OnlineFold::merge`] is associative bit for bit: folding runs worker-
/// locally and merging at a barrier yields exactly the fold of the whole
/// sequence.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct OnlineFold {
    /// Number of runs folded in.
    pub runs: u64,
    /// One fold per counter field, in [`COUNT_FIELDS`] order.
    pub fields: [FieldFold; 11],
    /// Histogram of per-run mean delivery latency (`total_latency /
    /// packets_delivered`, integer division; runs with no delivered packet
    /// contribute no observation).
    pub latency: Log2Histogram,
    /// Histogram of per-run delivery ratios (`packets_delivered /
    /// packets_generated`; runs with no generated packet count as undefined).
    pub delivery: RatioHistogram,
}

impl OnlineFold {
    /// An empty fold.
    pub fn new() -> Self {
        OnlineFold::default()
    }

    /// Folds one run's counters in.
    pub fn observe(&mut self, counts: &KernelCounts) {
        self.runs += 1;
        for (fold, v) in self.fields.iter_mut().zip(count_values(counts)) {
            fold.observe(v);
        }
        if let Some(mean_latency) = counts.total_latency.checked_div(counts.packets_delivered) {
            self.latency.observe(mean_latency);
        }
        self.delivery
            .observe(counts.packets_delivered, counts.packets_generated);
    }

    /// Merges another fold in (the monoid operation).
    pub fn merge(&mut self, other: &OnlineFold) {
        self.runs += other.runs;
        for (a, b) in self.fields.iter_mut().zip(&other.fields) {
            a.merge(b);
        }
        self.latency.merge(&other.latency);
        self.delivery.merge(&other.delivery);
    }

    /// The fold of one field, by [`COUNT_FIELDS`] name.
    pub fn field(&self, name: &str) -> Option<&FieldFold> {
        COUNT_FIELDS
            .iter()
            .position(|&f| f == name)
            .map(|i| &self.fields[i])
    }

    /// The element-wise field sums as a [`KernelCounts`] (the group's
    /// aggregate counters).
    pub fn sums(&self) -> KernelCounts {
        KernelCounts {
            packets_generated: self.fields[0].sum,
            packets_delivered: self.fields[1].sum,
            packets_dropped: self.fields[2].sum,
            packets_pending: self.fields[3].sum,
            transmissions: self.fields[4].sum,
            receptions: self.fields[5].sum,
            collisions: self.fields[6].sum,
            total_latency: self.fields[7].sum,
            tx_slots: self.fields[8].sum,
            rx_slots: self.fields[9].sum,
            idle_slots: self.fields[10].sum,
        }
    }

    /// Aggregate delivery ratio (sum of delivered / sum of generated; 0 when
    /// nothing was generated).
    pub fn delivery_ratio(&self) -> f64 {
        let generated = self.fields[0].sum;
        if generated == 0 {
            0.0
        } else {
            self.fields[1].sum as f64 / generated as f64
        }
    }

    /// The fold as a stable JSON object: per-field statistics (keyed by field
    /// name), both histograms and their p50/p90/p99 bucket lower bounds.
    pub fn to_json_value(&self) -> Value {
        let mut stats = BTreeMap::new();
        for (name, fold) in COUNT_FIELDS.iter().zip(&self.fields) {
            stats.insert(name.to_string(), fold.to_json_value(self.runs));
        }
        let mut map = BTreeMap::new();
        map.insert("runs".to_string(), Value::from(self.runs));
        map.insert(
            "stats".to_string(),
            Value::Object(stats.into_iter().collect()),
        );
        map.insert(
            "latency_log2_hist".to_string(),
            self.latency.to_json_value(),
        );
        for (key, q) in [
            ("latency_p50", 0.50),
            ("latency_p90", 0.90),
            ("latency_p99", 0.99),
        ] {
            map.insert(
                key.to_string(),
                self.latency
                    .percentile_lower_bound(q)
                    .map_or(Value::Null, Value::from),
            );
        }
        map.insert("delivery_hist".to_string(), self.delivery.to_json_value());
        map.insert(
            "delivery_undefined_runs".to_string(),
            Value::from(self.delivery.undefined),
        );
        for (key, q) in [("delivery_p10", 0.10), ("delivery_p50", 0.50)] {
            map.insert(
                key.to_string(),
                self.delivery
                    .percentile_lower_bound(q)
                    .map_or(Value::Null, Value::from),
            );
        }
        Value::Object(map)
    }
}

/// One grid axis a sweep can be grouped by. The canonical order —
/// window, traffic, retries, seed — mirrors the sweep's grid expansion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum GroupAxis {
    /// The deployment window axis.
    Window,
    /// The traffic axis (Bernoulli load or period; `load` is accepted as an
    /// alias when parsing).
    Traffic,
    /// The retry-budget axis.
    Retries,
    /// The RNG-seed axis.
    Seed,
}

impl GroupAxis {
    /// The canonical axis name.
    pub fn name(self) -> &'static str {
        match self {
            GroupAxis::Window => "window",
            GroupAxis::Traffic => "traffic",
            GroupAxis::Retries => "retries",
            GroupAxis::Seed => "seed",
        }
    }

    fn parse(name: &str) -> Result<GroupAxis> {
        match name.trim() {
            "window" => Ok(GroupAxis::Window),
            "traffic" | "load" => Ok(GroupAxis::Traffic),
            "retries" => Ok(GroupAxis::Retries),
            "seed" => Ok(GroupAxis::Seed),
            other => Err(invalid(&format!(
                "unknown group axis '{other}' (expected window, traffic/load, retries or seed)"
            ))),
        }
    }

    fn index(self) -> usize {
        match self {
            GroupAxis::Window => 0,
            GroupAxis::Traffic => 1,
            GroupAxis::Retries => 2,
            GroupAxis::Seed => 3,
        }
    }
}

/// The axes a streaming sweep folds onto: any subset of the grid axes, kept
/// deduplicated in canonical order. The empty spec folds the whole grid into
/// one global group.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GroupSpec {
    axes: Vec<GroupAxis>,
}

impl GroupSpec {
    /// A spec over the given axes (deduplicated, canonical order).
    pub fn new(axes: impl IntoIterator<Item = GroupAxis>) -> Self {
        let mut axes: Vec<GroupAxis> = axes.into_iter().collect();
        axes.sort_unstable();
        axes.dedup();
        GroupSpec { axes }
    }

    /// Parses a comma-separated axis list (e.g. `"load,retries"`; the empty
    /// string yields the empty spec).
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::InvalidSpec`] for an unknown axis name.
    pub fn parse(list: &str) -> Result<Self> {
        let names: Vec<&str> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        Ok(GroupSpec::new(
            names
                .into_iter()
                .map(GroupAxis::parse)
                .collect::<Result<Vec<GroupAxis>>>()?,
        ))
    }

    /// Parses a JSON array of axis-name strings.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::InvalidSpec`] for non-string entries or
    /// unknown axis names.
    pub fn from_json(value: &Value) -> Result<Self> {
        let items = value
            .as_array()
            .ok_or_else(|| invalid("'group_by' must be an array of axis names"))?;
        Ok(GroupSpec::new(
            items
                .iter()
                .map(|item| {
                    item.as_str()
                        .ok_or_else(|| invalid("'group_by' entries must be strings"))
                        .and_then(GroupAxis::parse)
                })
                .collect::<Result<Vec<GroupAxis>>>()?,
        ))
    }

    /// The selected axes, in canonical order.
    pub fn axes(&self) -> &[GroupAxis] {
        &self.axes
    }

    /// Whether no axis is selected (one global group).
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// The axis names as a JSON array.
    pub fn to_json_value(&self) -> Value {
        Value::Array(self.axes.iter().map(|a| Value::from(a.name())).collect())
    }
}

impl fmt::Display for GroupSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.axes.iter().map(|a| a.name()).collect();
        write!(f, "{}", names.join(","))
    }
}

/// The coordinate values identifying one group: the selected axes' values
/// (unselected axes are `None` — the group spans them).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct GroupKey {
    /// Window side length, when grouped by window.
    pub window: Option<i64>,
    /// Traffic description, when grouped by traffic.
    pub traffic: Option<String>,
    /// Retry budget, when grouped by retries.
    pub retries: Option<u32>,
    /// RNG seed, when grouped by seed.
    pub seed: Option<u64>,
}

impl GroupKey {
    /// The key as a JSON object holding only the selected axes.
    pub fn to_json_value(&self) -> Value {
        let mut map = BTreeMap::new();
        if let Some(w) = self.window {
            map.insert("window".to_string(), Value::from(w));
        }
        if let Some(t) = &self.traffic {
            map.insert("traffic".to_string(), Value::from(t.clone()));
        }
        if let Some(r) = self.retries {
            map.insert("retries".to_string(), Value::from(u64::from(r)));
        }
        if let Some(s) = self.seed {
            map.insert("seed".to_string(), Value::from(s));
        }
        Value::Object(map)
    }
}

impl fmt::Display for GroupKey {
    /// `axis=value` pairs in canonical order, or `(all)` for the global group.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(w) = self.window {
            parts.push(format!("window={w}"));
        }
        if let Some(t) = &self.traffic {
            parts.push(format!("traffic={t}"));
        }
        if let Some(r) = self.retries {
            parts.push(format!("retries={r}"));
        }
        if let Some(s) = self.seed {
            parts.push(format!("seed={s}"));
        }
        if parts.is_empty() {
            write!(f, "(all)")
        } else {
            write!(f, "{}", parts.join(" "))
        }
    }
}

/// One group of a streaming (or grouped full-mode) sweep: its key and its
/// fold.
#[derive(Clone, PartialEq, Debug)]
pub struct GroupReport {
    /// The selected axes' values.
    pub key: GroupKey,
    /// The online fold of every run in the group.
    pub fold: OnlineFold,
}

impl GroupReport {
    /// The report as a stable JSON object.
    pub fn to_json_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("key".to_string(), self.key.to_json_value());
        if let Value::Object(fold) = self.fold.to_json_value() {
            map.extend(fold);
        }
        Value::Object(map)
    }
}

/// Upper bound on the number of groups a sweep may fold into: the report is
/// O(groups), so this caps accidental per-run-sized groupings of huge grids
/// at a few hundred MiB instead of letting them exhaust memory.
pub const MAX_GROUPS: usize = 1 << 16;

/// The grouping engine of one sweep grid: maps run indices (in the sweep's
/// expansion order, windows × traffic × retries × seeds) to group ids and
/// back to group keys.
#[derive(Clone, Debug)]
pub struct GroupBy {
    spec: GroupSpec,
    /// Axis lengths: windows, traffic, retries, seeds.
    dims: [usize; 4],
    /// Whether each canonical axis is selected.
    selected: [bool; 4],
    groups: usize,
}

impl GroupBy {
    /// The grouping of a sweep grid by the given spec.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::InvalidSpec`] when the grouping would
    /// produce more than [`MAX_GROUPS`] groups.
    pub fn for_spec(spec: &SweepSpec, group_spec: &GroupSpec) -> Result<GroupBy> {
        let dims = [
            spec.windows.len(),
            spec.traffic.len(),
            spec.retries.len(),
            spec.seeds.len(),
        ];
        let mut selected = [false; 4];
        for axis in group_spec.axes() {
            selected[axis.index()] = true;
        }
        let mut groups = 1usize;
        for (i, &dim) in dims.iter().enumerate() {
            if selected[i] {
                groups = groups.saturating_mul(dim);
            }
        }
        if groups > MAX_GROUPS {
            return Err(invalid(&format!(
                "grouping by '{group_spec}' yields {groups} groups (max {MAX_GROUPS})"
            )));
        }
        Ok(GroupBy {
            spec: group_spec.clone(),
            dims,
            selected,
            groups,
        })
    }

    /// The grouping spec.
    pub fn spec(&self) -> &GroupSpec {
        &self.spec
    }

    /// Number of groups (1 for the empty spec).
    pub fn num_groups(&self) -> usize {
        self.groups
    }

    /// The grid coordinates (window, traffic, retries, seed indices) of a run
    /// index in expansion order.
    #[inline]
    fn coords_of_run(&self, run: usize) -> [usize; 4] {
        let [_, t, r, s] = self.dims;
        [run / (s * r * t), run / (s * r) % t, run / s % r, run % s]
    }

    /// The group id of a run index.
    #[inline]
    pub fn group_of_run(&self, run: usize) -> usize {
        let coords = self.coords_of_run(run);
        let mut g = 0usize;
        for ((&selected, &dim), &coord) in self.selected.iter().zip(&self.dims).zip(&coords) {
            if selected {
                g = g * dim + coord;
            }
        }
        g
    }

    /// The selected axes' coordinate indices of a group id (unselected axes
    /// are `None`).
    pub fn coords_of_group(&self, mut group: usize) -> [Option<usize>; 4] {
        let mut coords = [None; 4];
        for i in (0..4).rev() {
            if self.selected[i] {
                coords[i] = Some(group % self.dims[i]);
                group /= self.dims[i];
            }
        }
        coords
    }

    /// Folds an in-order sequence of run counters (starting at run index
    /// `offset`) into dense per-group accumulators of length
    /// [`GroupBy::num_groups`].
    pub fn fold_counts<'a>(
        &self,
        offset: usize,
        counts: impl IntoIterator<Item = &'a KernelCounts>,
    ) -> Vec<OnlineFold> {
        let mut folds = vec![OnlineFold::new(); self.groups];
        for (i, c) in counts.into_iter().enumerate() {
            folds[self.group_of_run(offset + i)].observe(c);
        }
        folds
    }

    /// Attaches group keys to dense per-group folds, in group-id order.
    pub fn reports(&self, spec: &SweepSpec, folds: Vec<OnlineFold>) -> Vec<GroupReport> {
        debug_assert_eq!(folds.len(), self.groups);
        folds
            .into_iter()
            .enumerate()
            .map(|(g, fold)| {
                let [w, t, r, s] = self.coords_of_group(g);
                GroupReport {
                    key: GroupKey {
                        window: w.map(|i| spec.windows[i]),
                        traffic: t.map(|i| spec.traffic.label(i)),
                        retries: r.map(|i| spec.retries[i]),
                        seed: s.map(|i| spec.seeds.get(i)),
                    },
                    fold,
                }
            })
            .collect()
    }
}

/// Dense worker-local per-group accumulators: a fixed `u32` index vector (one
/// slot per group) pointing into a compact vector of folds for the groups the
/// worker actually touched, plus the touched-group list.
///
/// Streaming sweeps and search evaluations fold every run into a per-band
/// accumulator; near [`MAX_GROUPS`] a per-band `HashMap` spends most of its
/// fold time hashing and probing. Here an observation is one array read (plus,
/// on a group's first touch, one push), the index costs 4 bytes per group
/// (256 KiB at [`MAX_GROUPS`]) and fold storage stays proportional to the
/// groups the band actually saw. Within one band every group owns exactly one
/// fold, so [`GroupFolds::merge_into`] reproduces the per-group sequential
/// fold bit for bit whenever bands are merged in a fixed order.
#[derive(Clone, Debug, Default)]
pub struct GroupFolds {
    /// Group id → slot in `folds` (`u32::MAX` marks an untouched group).
    index: Vec<u32>,
    /// One fold per touched group, in first-touch order.
    folds: Vec<OnlineFold>,
    /// The touched group ids, parallel to `folds`.
    touched: Vec<u32>,
}

impl GroupFolds {
    const UNTOUCHED: u32 = u32::MAX;

    /// Empty accumulators over `num_groups` groups.
    ///
    /// # Panics
    ///
    /// Panics if `num_groups` does not fit the `u32` index (far above
    /// [`MAX_GROUPS`]).
    pub fn new(num_groups: usize) -> Self {
        assert!(
            num_groups < Self::UNTOUCHED as usize,
            "{num_groups} groups exceed the dense u32 index"
        );
        GroupFolds {
            index: vec![Self::UNTOUCHED; num_groups],
            folds: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// The number of groups the accumulator covers.
    pub fn num_groups(&self) -> usize {
        self.index.len()
    }

    /// The number of groups touched so far.
    pub fn len(&self) -> usize {
        self.folds.len()
    }

    /// Whether no run has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.folds.is_empty()
    }

    /// Folds one run's counters into its group (first touch allocates the
    /// group's fold).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[inline]
    pub fn observe(&mut self, group: usize, counts: &KernelCounts) {
        let mut slot = self.index[group];
        if slot == Self::UNTOUCHED {
            slot = self.folds.len() as u32;
            self.index[group] = slot;
            self.folds.push(OnlineFold::new());
            self.touched.push(group as u32);
        }
        self.folds[slot as usize].observe(counts);
    }

    /// The touched groups and their folds, in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &OnlineFold)> + '_ {
        self.touched
            .iter()
            .zip(&self.folds)
            .map(|(&g, fold)| (g as usize, fold))
    }

    /// Merges every touched fold into a dense per-group vector indexed by
    /// group id.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is shorter than [`GroupFolds::num_groups`].
    pub fn merge_into(&self, dense: &mut [OnlineFold]) {
        for (group, fold) in self.iter() {
            dense[group].merge(fold);
        }
    }
}

/// Folds a full-mode report's per-run list onto the given axes — the exact
/// sequential counterpart of a streaming sweep's worker-local folds, used to
/// property-test streaming parity and to print group tables for full-mode
/// sweeps.
///
/// # Errors
///
/// Returns [`crate::EngineError::InvalidSpec`] when `per_run` does not cover
/// the spec's grid exactly, or the grouping exceeds [`MAX_GROUPS`].
pub fn fold_full_report(
    spec: &SweepSpec,
    group_spec: &GroupSpec,
    per_run: &[SweepRunReport],
) -> Result<Vec<GroupReport>> {
    if per_run.len() != spec.num_runs() {
        return Err(invalid(&format!(
            "per-run list covers {} runs, the spec grid has {}",
            per_run.len(),
            spec.num_runs()
        )));
    }
    let grouping = GroupBy::for_spec(spec, group_spec)?;
    let folds = grouping.fold_counts(0, per_run.iter().map(|r| &r.counts));
    Ok(grouping.reports(spec, folds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{builtin_sweep, SweepTraffic};

    fn counts(generated: u64, delivered: u64, latency: u64) -> KernelCounts {
        KernelCounts {
            packets_generated: generated,
            packets_delivered: delivered,
            total_latency: latency,
            ..KernelCounts::default()
        }
    }

    #[test]
    fn field_fold_tracks_exact_moments() {
        let mut fold = FieldFold::default();
        for v in [3u64, 5, 7] {
            fold.observe(v);
        }
        assert_eq!(fold.sum, 15);
        assert_eq!(fold.sum_sq, 9 + 25 + 49);
        assert_eq!((fold.min, fold.max), (3, 7));
        assert!((fold.mean(3) - 5.0).abs() < 1e-12);
        // Population variance of {3,5,7} is 8/3.
        assert!((fold.variance(3) - 8.0 / 3.0).abs() < 1e-12);
        // Merging two partial folds equals the sequential fold exactly.
        let mut a = FieldFold::default();
        let mut b = FieldFold::default();
        a.observe(3);
        b.observe(5);
        b.observe(7);
        a.merge(&b);
        assert_eq!(a, fold);
        // The empty fold is the merge identity.
        let mut with_identity = fold;
        with_identity.merge(&FieldFold::default());
        assert_eq!(with_identity, fold);
        assert_eq!(FieldFold::default().mean(0), 0.0);
        assert_eq!(FieldFold::default().variance(0), 0.0);
    }

    #[test]
    fn log2_histogram_buckets_and_percentiles_are_exact() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_lower_bound(0), 0);
        assert_eq!(Log2Histogram::bucket_lower_bound(1), 1);
        assert_eq!(Log2Histogram::bucket_lower_bound(64), 1 << 63);

        let mut h = Log2Histogram::default();
        assert_eq!(h.percentile_bucket(0.5), None);
        // 4 observations: 0, 1, 5, 9 → buckets 0, 1, 3, 4.
        for v in [0u64, 1, 5, 9] {
            h.observe(v);
        }
        assert_eq!(h.total(), 4);
        // p25 → 1st smallest (bucket 0); p50 → 2nd (bucket 1); p75 → 3rd
        // (bucket 3); p100 → 4th (bucket 4).
        assert_eq!(h.percentile_bucket(0.25), Some(0));
        assert_eq!(h.percentile_bucket(0.5), Some(1));
        assert_eq!(h.percentile_bucket(0.75), Some(3));
        assert_eq!(h.percentile_bucket(1.0), Some(4));
        assert_eq!(h.percentile_lower_bound(0.75), Some(4));
        // q = 0 clamps to the smallest observation.
        assert_eq!(h.percentile_bucket(0.0), Some(0));

        // Merge is element-wise addition.
        let mut a = Log2Histogram::default();
        a.observe(5);
        let mut b = Log2Histogram::default();
        b.observe(9);
        a.merge(&b);
        assert_eq!(a.count(3), 1);
        assert_eq!(a.count(4), 1);
        let json = h.to_json_value();
        assert_eq!(json.as_array().unwrap().len(), 4, "sparse buckets only");
    }

    #[test]
    fn ratio_histogram_buckets_in_integer_arithmetic() {
        assert_eq!(RatioHistogram::bucket_of(0, 10), 0);
        assert_eq!(RatioHistogram::bucket_of(10, 10), 64);
        assert_eq!(RatioHistogram::bucket_of(5, 10), 32);
        assert_eq!(RatioHistogram::bucket_of(1, 3), 21); // ⌊64/3⌋
        let mut h = RatioHistogram::default();
        h.observe(3, 4);
        h.observe(4, 4);
        h.observe(0, 0); // undefined
        assert_eq!(h.total(), 2);
        assert_eq!(h.undefined, 1);
        assert_eq!(h.percentile_bucket(0.5), Some(48));
        assert_eq!(h.percentile_lower_bound(1.0), Some(1.0));
        assert_eq!(RatioHistogram::bucket_lower_bound(32), 0.5);
    }

    #[test]
    fn online_fold_merge_equals_sequential_fold() {
        let runs: Vec<KernelCounts> = (0..10).map(|i| counts(10 + i, 5 + i / 2, 30 * i)).collect();
        let mut sequential = OnlineFold::new();
        for c in &runs {
            sequential.observe(c);
        }
        assert_eq!(sequential.runs, 10);
        // Any split point merges to the same fold, bit for bit.
        for split in 0..=runs.len() {
            let (left, right) = runs.split_at(split);
            let mut a = OnlineFold::new();
            let mut b = OnlineFold::new();
            for c in left {
                a.observe(c);
            }
            for c in right {
                b.observe(c);
            }
            a.merge(&b);
            assert_eq!(a, sequential, "split at {split}");
        }
        assert_eq!(sequential.sums().packets_generated, (10..20).sum::<u64>());
        assert!(sequential.delivery_ratio() > 0.0);
        assert_eq!(
            sequential.field("packets_generated").unwrap().min,
            10,
            "field lookup by name"
        );
        assert!(sequential.field("no_such_field").is_none());
        let json = sequential.to_json_value();
        assert_eq!(json.get("runs").unwrap().as_u64(), Some(10));
        assert!(json.get("stats").unwrap().get("collisions").is_some());
    }

    #[test]
    fn latency_observations_skip_undelivered_runs() {
        let mut fold = OnlineFold::new();
        fold.observe(&counts(4, 0, 0)); // nothing delivered: no latency sample
        fold.observe(&counts(4, 2, 12)); // mean latency 6 → bucket 3
        assert_eq!(fold.latency.total(), 1);
        assert_eq!(fold.latency.count(3), 1);
        // A zero-generation run counts as undefined delivery.
        fold.observe(&counts(0, 0, 0));
        assert_eq!(fold.delivery.undefined, 1);
        assert_eq!(fold.runs, 3);
    }

    #[test]
    fn group_spec_parses_dedupes_and_orders() {
        let spec = GroupSpec::parse("retries, load").unwrap();
        assert_eq!(spec.axes(), &[GroupAxis::Traffic, GroupAxis::Retries]);
        assert_eq!(spec.to_string(), "traffic,retries");
        let spec = GroupSpec::parse("seed,window,seed").unwrap();
        assert_eq!(spec.axes(), &[GroupAxis::Window, GroupAxis::Seed]);
        assert!(GroupSpec::parse("").unwrap().is_empty());
        assert!(GroupSpec::parse("warp").is_err());
        let json: Value = serde_json::from_str(r#"["retries", "traffic"]"#).unwrap();
        assert_eq!(
            GroupSpec::from_json(&json).unwrap().axes(),
            &[GroupAxis::Traffic, GroupAxis::Retries]
        );
        assert!(GroupSpec::from_json(&Value::from(3u64)).is_err());
        assert_eq!(
            GroupSpec::parse("seed").unwrap().to_json_value(),
            serde_json::from_str(r#"["seed"]"#).unwrap()
        );
    }

    fn grid_spec() -> SweepSpec {
        SweepSpec {
            windows: vec![8, 16],
            traffic: SweepTraffic::Bernoulli(vec![0.1, 0.2, 0.3]),
            retries: vec![0, 2],
            seeds: vec![1, 2, 3, 4, 5].into(),
            ..builtin_sweep()
        }
    }

    #[test]
    fn group_ids_partition_the_grid() {
        let spec = grid_spec();
        let gspec = GroupSpec::parse("traffic,retries").unwrap();
        let grouping = GroupBy::for_spec(&spec, &gspec).unwrap();
        assert_eq!(grouping.num_groups(), 3 * 2);
        // Every run lands in exactly one group; group sizes are the product of
        // the unselected axes.
        let mut sizes = vec![0usize; grouping.num_groups()];
        for run in 0..spec.num_runs() {
            sizes[grouping.group_of_run(run)] += 1;
        }
        assert!(sizes.iter().all(|&s| s == 2 * 5));
        // Keys carry exactly the selected axes, in group-id order.
        let folds = vec![OnlineFold::new(); grouping.num_groups()];
        let reports = grouping.reports(&spec, folds);
        assert_eq!(reports.len(), 6);
        assert_eq!(
            reports[0].key.traffic.as_deref(),
            Some("bernoulli(p=0.100)")
        );
        assert_eq!(reports[0].key.retries, Some(0));
        assert_eq!(reports[1].key.retries, Some(2));
        assert_eq!(
            reports[5].key.traffic.as_deref(),
            Some("bernoulli(p=0.300)")
        );
        assert!(reports[0].key.window.is_none());
        assert!(reports[0].key.seed.is_none());
        assert!(reports[0].key.to_string().contains("retries=0"));

        // The empty spec folds everything into one global group.
        let global = GroupBy::for_spec(&spec, &GroupSpec::default()).unwrap();
        assert_eq!(global.num_groups(), 1);
        assert!((0..spec.num_runs()).all(|run| global.group_of_run(run) == 0));
        assert_eq!(
            global.reports(&spec, vec![OnlineFold::new()])[0]
                .key
                .to_string(),
            "(all)"
        );

        // Grouping by every axis is one group per run.
        let full = GroupBy::for_spec(
            &spec,
            &GroupSpec::parse("window,traffic,retries,seed").unwrap(),
        )
        .unwrap();
        assert_eq!(full.num_groups(), spec.num_runs());
        let mut seen = vec![false; full.num_groups()];
        for run in 0..spec.num_runs() {
            let g = full.group_of_run(run);
            assert!(!seen[g], "group {g} hit twice");
            seen[g] = true;
        }
    }

    #[test]
    fn oversized_groupings_are_rejected() {
        let spec = SweepSpec {
            seeds: (0..=MAX_GROUPS as u64).collect(),
            ..grid_spec()
        };
        assert!(GroupBy::for_spec(&spec, &GroupSpec::parse("seed").unwrap()).is_err());
        // Unselected huge axes are fine.
        assert!(GroupBy::for_spec(&spec, &GroupSpec::parse("retries").unwrap()).is_ok());
    }

    #[test]
    fn fold_counts_groups_in_run_order() {
        let spec = SweepSpec {
            windows: vec![8],
            traffic: SweepTraffic::Bernoulli(vec![0.1]),
            retries: vec![0, 1],
            seeds: vec![1, 2, 3].into(),
            ..builtin_sweep()
        };
        let gspec = GroupSpec::parse("retries").unwrap();
        let grouping = GroupBy::for_spec(&spec, &gspec).unwrap();
        let runs: Vec<KernelCounts> = (0..6).map(|i| counts(100, 10 * i, i)).collect();
        let folds = grouping.fold_counts(0, runs.iter());
        assert_eq!(folds.len(), 2);
        // Expansion order: retries 0 → seeds 1,2,3 (runs 0..3); retries 1 →
        // runs 3..6.
        assert_eq!(folds[0].runs, 3);
        assert_eq!(folds[0].sums().packets_delivered, 10 + 20);
        assert_eq!(folds[1].sums().packets_delivered, 30 + 40 + 50);
        // Folding the same runs in two offset chunks merges to the same folds.
        let mut chunked = grouping.fold_counts(0, runs[..2].iter());
        let tail = grouping.fold_counts(2, runs[2..].iter());
        for (a, b) in chunked.iter_mut().zip(&tail) {
            a.merge(b);
        }
        assert_eq!(chunked, folds);
    }

    #[test]
    fn group_folds_match_dense_sequential_folding() {
        // A sparse banded accumulation over 1000 groups, touching a few.
        let mut sparse = GroupFolds::new(1000);
        assert_eq!(sparse.num_groups(), 1000);
        assert!(sparse.is_empty());
        let mut dense_reference = vec![OnlineFold::new(); 1000];
        for (group, generated, delivered) in
            [(7usize, 100, 90), (999, 50, 10), (7, 200, 150), (0, 30, 30)]
        {
            let c = counts(generated, delivered, delivered);
            sparse.observe(group, &c);
            dense_reference[group].observe(&c);
        }
        assert_eq!(sparse.len(), 3);
        // Touched groups iterate in first-touch order, not group order.
        let touched: Vec<usize> = sparse.iter().map(|(g, _)| g).collect();
        assert_eq!(touched, vec![7, 999, 0]);
        // merge_into reproduces the sequential dense fold bit-for-bit.
        let mut dense = vec![OnlineFold::new(); 1000];
        sparse.merge_into(&mut dense);
        assert_eq!(dense, dense_reference);
        // Merging a second band accumulates, exactly like sequential folding.
        let mut band2 = GroupFolds::new(1000);
        let extra = counts(10, 5, 5);
        band2.observe(999, &extra);
        band2.observe(3, &extra);
        band2.merge_into(&mut dense);
        dense_reference[999].observe(&extra);
        dense_reference[3].observe(&extra);
        assert_eq!(dense, dense_reference);
    }
}
