//! Error types of the query engine.

use latsched_core::ScheduleError;
use latsched_lattice::LatticeError;
use latsched_tiling::TilingError;
use std::fmt;

/// The result type of engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors produced while compiling or querying schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A point or region had a dimension different from the compiled schedule's.
    DimensionMismatch {
        /// Dimension expected by the receiver.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// The schedule has more slots than the dense `u16` table can encode.
    TooManySlots {
        /// The schedule's slot count.
        slots: usize,
    },
    /// The period sublattice has too many cosets to flatten into a dense table.
    TableTooLarge {
        /// The number of cosets of the period sublattice.
        cosets: u64,
    },
    /// A batched query window has more points than this platform can address.
    WindowTooLarge {
        /// The number of points in the window.
        points: u64,
    },
    /// A neighbourhood shape does not tile the lattice, so no Theorem 1 schedule
    /// exists for it.
    NotSchedulable(String),
    /// A scenario specification was malformed; the string names the problem.
    InvalidSpec(String),
    /// A frame plan or adjacency referenced a node id outside the network.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes.
        nodes: usize,
    },
    /// A frame schedule and an interference adjacency were built for networks of
    /// different sizes.
    NodeCountMismatch {
        /// Node count of the frame schedule.
        frames: usize,
        /// Node count of the adjacency.
        adjacency: usize,
    },
    /// A simulation-kernel configuration was invalid; the string names the
    /// problem (e.g. a zero traffic period).
    InvalidKernelConfig(String),
    /// An underlying graph-coloring computation failed; the string names the
    /// error.
    Coloring(String),
    /// An underlying schedule computation failed.
    Schedule(ScheduleError),
    /// An underlying tiling computation failed.
    Tiling(TilingError),
    /// An underlying lattice computation failed.
    Lattice(LatticeError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            EngineError::TooManySlots { slots } => {
                write!(f, "{slots} slots exceed the dense table's u16 capacity")
            }
            EngineError::TableTooLarge { cosets } => {
                write!(f, "period has {cosets} cosets, too many for a dense table")
            }
            EngineError::WindowTooLarge { points } => {
                write!(
                    f,
                    "query window has {points} points, too many for one batch"
                )
            }
            EngineError::NotSchedulable(shape) => {
                write!(f, "neighbourhood {shape} does not tile the lattice")
            }
            EngineError::InvalidSpec(msg) => write!(f, "invalid scenario spec: {msg}"),
            EngineError::NodeOutOfRange { node, nodes } => write!(
                f,
                "node {node} is out of range for a network of {nodes} nodes"
            ),
            EngineError::NodeCountMismatch { frames, adjacency } => write!(
                f,
                "frame schedule covers {frames} nodes but the adjacency covers {adjacency}"
            ),
            EngineError::InvalidKernelConfig(msg) => {
                write!(f, "invalid kernel configuration: {msg}")
            }
            EngineError::Coloring(msg) => write!(f, "coloring error: {msg}"),
            EngineError::Schedule(e) => write!(f, "schedule error: {e}"),
            EngineError::Tiling(e) => write!(f, "tiling error: {e}"),
            EngineError::Lattice(e) => write!(f, "lattice error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ScheduleError> for EngineError {
    fn from(e: ScheduleError) -> Self {
        EngineError::Schedule(e)
    }
}

impl From<TilingError> for EngineError {
    fn from(e: TilingError) -> Self {
        EngineError::Tiling(e)
    }
}

impl From<LatticeError> for EngineError {
    fn from(e: LatticeError) -> Self {
        EngineError::Lattice(e)
    }
}
