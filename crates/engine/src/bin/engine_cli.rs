//! `engine-cli`: run schedule-query scenarios and report throughput.
//!
//! ```bash
//! engine-cli                         # run the builtin Figure-2 scenario suite
//! engine-cli spec.json [spec2.json]  # run scenarios from JSON spec files
//! engine-cli --json out.json ...     # also write the reports as JSON
//! engine-cli --dump ...              # stream every slot answer to stdout (CSV)
//! engine-cli sweep                   # run the builtin 64-run stochastic sweep
//! engine-cli sweep spec.json ...     # run sweeps from JSON spec files
//! engine-cli search                  # run the builtin Figure-2 schedule search
//! engine-cli search spec.json ...    # run schedule searches from JSON spec files
//! engine-cli --threads N ...         # pin the worker pool (any mode/subcommand)
//! engine-cli sweep --profile         # print the per-sweep runtime profile
//! engine-cli --metrics-out FILE ...  # write Prometheus-style telemetry text
//! ```
//!
//! `--threads N` sets `LATSCHED_THREADS` before the first worker-pool query,
//! so benches and CI determinism checks reproduce a fixed parallelism; it is
//! accepted anywhere on the command line, in every mode.
//!
//! `--metrics-out FILE` (also accepted anywhere, in every mode) enables the
//! telemetry registry and, after the run, writes every counter and stage
//! histogram as Prometheus-style text exposition to `FILE`. `sweep --profile`
//! and `search --profile` enable the same registry and pretty-print each
//! report's embedded [`latsched_engine::TelemetrySnapshot`]: the fast-path
//! dispatch mix, per-tier cache counters and the nested stage-time tree.
//!
//! See `latsched_engine::Scenario` for the scenario spec format,
//! `latsched_engine::SweepSpec` for the sweep spec format and
//! `latsched_engine::SearchSpec` for the search spec format.

use latsched_engine::{
    builtin_scenarios, builtin_search, builtin_sweep, run_scenario, run_search, run_sweep,
    GroupReport, GroupSpec, Scenario, ScheduleCache, SearchSpec, SweepCaches, SweepMode, SweepSpec,
};
use std::process::ExitCode;

/// Prints one sweep's group folds as a table: key, run count, aggregate
/// delivery, mean latency and the p99 latency bucket bound. With `top`,
/// rows are ranked by delivered packets and truncated.
fn print_group_table(groups: &[GroupReport], top: Option<usize>) {
    let mut order: Vec<usize> = (0..groups.len()).collect();
    if top.is_some() {
        order.sort_by_key(|&i| std::cmp::Reverse(groups[i].fold.sums().packets_delivered));
    }
    let shown = top.unwrap_or(groups.len()).min(groups.len());
    println!(
        "  {:<44} {:>8} {:>12} {:>12} {:>9} {:>10} {:>9}",
        "group", "runs", "generated", "delivered", "ratio", "mean-lat", "p99-lat"
    );
    for &i in order.iter().take(shown) {
        let g = &groups[i];
        let sums = g.fold.sums();
        let latency = g.fold.field("total_latency").expect("known field");
        let mean_latency = if sums.packets_delivered > 0 {
            latency.sum as f64 / sums.packets_delivered as f64
        } else {
            0.0
        };
        println!(
            "  {:<44} {:>8} {:>12} {:>12} {:>8.1}% {:>10.2} {:>9}",
            g.key.to_string(),
            g.fold.runs,
            sums.packets_generated,
            sums.packets_delivered,
            g.fold.delivery_ratio() * 100.0,
            mean_latency,
            g.fold
                .latency
                .percentile_lower_bound(0.99)
                .map_or("-".to_string(), |b| format!("≥{b}")),
        );
    }
    if shown < groups.len() {
        println!("  … {} more group(s)", groups.len() - shown);
    }
}

/// The `sweep` subcommand: run parameter-grid sweeps and report aggregate
/// counters plus throughput (and, with `--stats`, per-tier cache counters of
/// the artifact pipeline). `--streaming` switches every sweep to online
/// per-axis folds (`--group-by` selects the axes) so the report stays
/// O(groups) on huge grids; `--top N` ranks the printed group table by
/// delivered packets.
fn sweep_main(args: Vec<String>) -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut stats = false;
    let mut profile = false;
    let mut streaming = false;
    let mut group_by: Option<GroupSpec> = None;
    let mut top: Option<usize> = None;
    let mut spec_paths: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => match iter.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--stats" => stats = true,
            "--profile" => profile = true,
            "--streaming" => streaming = true,
            "--group-by" => match iter.next() {
                Some(list) => match GroupSpec::parse(&list) {
                    Ok(spec) => group_by = Some(spec),
                    Err(err) => {
                        eprintln!("bad --group-by: {err}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--group-by requires a comma-separated axis list");
                    return ExitCode::FAILURE;
                }
            },
            "--top" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => top = Some(n),
                None => {
                    eprintln!("--top requires a row count");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: engine-cli sweep [--json FILE] [--stats] [--profile] [--streaming] \
                     [--group-by AXES] [--top N] [--threads N] [--metrics-out FILE] [SPEC.json]..."
                );
                println!("With no spec files, runs the builtin 64-run stochastic sweep.");
                println!("--stats prints hit/miss/entry counters of all five artifact tiers.");
                println!(
                    "--profile prints each sweep's runtime profile: kernel dispatch mix, \
                     cache counters and the nested stage-time tree."
                );
                println!(
                    "--streaming folds runs online (O(groups) report memory, no per-run \
                     detail); --group-by selects fold axes from window, traffic/load, \
                     retries, seed."
                );
                return ExitCode::SUCCESS;
            }
            other => spec_paths.push(other.to_string()),
        }
    }

    let mut sweeps: Vec<SweepSpec> = Vec::new();
    if spec_paths.is_empty() {
        sweeps.push(builtin_sweep());
    } else {
        for path in &spec_paths {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("failed to read {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            match SweepSpec::parse_spec(&text) {
                Ok(mut parsed) => sweeps.append(&mut parsed),
                Err(err) => {
                    eprintln!("failed to parse {path}: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if streaming || group_by.is_some() {
        // The command-line mode overrides whatever the spec files say.
        for spec in &mut sweeps {
            spec.mode = SweepMode::Streaming(group_by.clone().unwrap_or_default());
        }
    }
    if profile {
        latsched_engine::telemetry().set_enabled(true);
    }

    let caches = SweepCaches::new();
    let mut reports = Vec::with_capacity(sweeps.len());
    for spec in &sweeps {
        match run_sweep(spec, &caches) {
            Ok(report) => {
                println!("{report}");
                if matches!(report.mode, SweepMode::Streaming(_)) {
                    print_group_table(&report.groups, top);
                }
                if stats {
                    println!("  caches: {}", report.caches);
                }
                if profile {
                    if let Some(telemetry) = &report.telemetry {
                        print!("{telemetry}");
                    }
                }
                reports.push(report);
            }
            Err(err) => {
                eprintln!("sweep '{}' failed: {err}", spec.name);
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "{} sweep(s), artifact pipeline: {}",
        reports.len(),
        caches.stats()
    );

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&serde_json::Value::Array(
            reports.iter().map(|r| r.to_json_value()).collect(),
        ));
        if let Err(err) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} sweep report(s) to {path}", reports.len());
    }
    ExitCode::SUCCESS
}

/// The `search` subcommand: enumerate, simulate and rank candidate schedules
/// for each scenario spec, printing the ranked candidate table (and, with
/// `--stats`, per-tier cache counters including the tier-5 search cache).
/// `--top N` overrides every spec's ranked-report truncation.
fn search_main(args: Vec<String>) -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut stats = false;
    let mut profile = false;
    let mut top: Option<usize> = None;
    let mut spec_paths: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => match iter.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--stats" => stats = true,
            "--profile" => profile = true,
            "--top" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => top = Some(n),
                _ => {
                    eprintln!("--top requires a positive row count");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: engine-cli search [--json FILE] [--stats] [--profile] [--top N] \
                     [--threads N] [--metrics-out FILE] [SPEC.json]..."
                );
                println!(
                    "With no spec files, runs the builtin Figure-2 Moore search \
                     (p99-latency objective)."
                );
                println!(
                    "Specs choose an objective (period, delivery, energy, \
                     latency_p<pct>), generator families (lattice, coloring), a \
                     per-family candidate budget and the evaluation grid."
                );
                println!(
                    "--stats prints hit/miss/entry counters of all five artifact \
                     tiers; warm re-runs answer from the search tier without \
                     re-evaluating any candidate."
                );
                return ExitCode::SUCCESS;
            }
            other => spec_paths.push(other.to_string()),
        }
    }

    let mut searches: Vec<SearchSpec> = Vec::new();
    if spec_paths.is_empty() {
        searches.push(builtin_search());
    } else {
        for path in &spec_paths {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("failed to read {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            match SearchSpec::parse_spec(&text) {
                Ok(mut parsed) => searches.append(&mut parsed),
                Err(err) => {
                    eprintln!("failed to parse {path}: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some(top) = top {
        for spec in &mut searches {
            spec.top = top;
        }
    }
    if profile {
        latsched_engine::telemetry().set_enabled(true);
    }

    let caches = SweepCaches::new();
    let mut reports = Vec::with_capacity(searches.len());
    for spec in &searches {
        match run_search(spec, &caches) {
            Ok(report) => {
                print!("{report}");
                if let Some(winner) = report.winner() {
                    println!(
                        "winner: {} ({}, period {}, {})",
                        winner.generator,
                        winner.family,
                        winner.period,
                        if winner.optimal {
                            "provably optimal"
                        } else {
                            "above the clique bound"
                        }
                    );
                }
                if stats {
                    println!("  caches: {}", report.caches);
                }
                if profile {
                    if let Some(telemetry) = &report.telemetry {
                        print!("{telemetry}");
                    }
                }
                reports.push(report);
            }
            Err(err) => {
                eprintln!("search '{}' failed: {err}", spec.name);
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "{} search(es), artifact pipeline: {}",
        reports.len(),
        caches.stats()
    );

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&serde_json::Value::Array(
            reports.iter().map(|r| r.to_json_value()).collect(),
        ));
        if let Err(err) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} search report(s) to {path}", reports.len());
    }
    ExitCode::SUCCESS
}

/// Strips the global flags accepted anywhere on the command line, in every
/// mode: `--threads N` pins the worker pool by setting `LATSCHED_THREADS`
/// before the first `worker_threads()` query caches it, and
/// `--metrics-out FILE` enables the telemetry registry and selects the
/// Prometheus exposition file written after the run. Returns the remaining
/// args and the metrics path.
fn apply_global_flags(args: Vec<String>) -> Result<(Vec<String>, Option<String>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut metrics_out = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            let threads = iter
                .next()
                .and_then(|n| n.parse::<usize>().ok())
                .filter(|&t| t >= 1)
                .ok_or("--threads requires a positive thread count")?;
            std::env::set_var("LATSCHED_THREADS", threads.to_string());
        } else if arg == "--metrics-out" {
            let path = iter.next().ok_or("--metrics-out requires a file path")?;
            latsched_engine::telemetry().set_enabled(true);
            metrics_out = Some(path);
        } else {
            rest.push(arg);
        }
    }
    Ok((rest, metrics_out))
}

/// Writes the registry's full state (every counter and stage histogram) as
/// Prometheus-style text exposition. Returns whether the write succeeded.
fn write_metrics(path: &str) -> bool {
    let text = latsched_engine::telemetry().snapshot().to_prometheus();
    if let Err(err) = std::fs::write(path, text) {
        eprintln!("failed to write {path}: {err}");
        return false;
    }
    println!("wrote telemetry metrics to {path}");
    true
}

fn main() -> ExitCode {
    let (args, metrics_out) = match apply_global_flags(std::env::args().skip(1).collect()) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    if args.first().map(String::as_str) == Some("sweep") {
        let code = sweep_main(args.into_iter().skip(1).collect());
        if let Some(path) = metrics_out {
            if !write_metrics(&path) {
                return ExitCode::FAILURE;
            }
        }
        return code;
    }
    if args.first().map(String::as_str) == Some("search") {
        let code = search_main(args.into_iter().skip(1).collect());
        if let Some(path) = metrics_out {
            if !write_metrics(&path) {
                return ExitCode::FAILURE;
            }
        }
        return code;
    }
    let mut json_path: Option<String> = None;
    let mut dump = false;
    let mut spec_paths: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => match iter.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--dump" => dump = true,
            "--help" | "-h" => {
                println!("usage: engine-cli [--json FILE] [--dump] [SPEC.json]...");
                println!("       engine-cli sweep [--json FILE] [SPEC.json]...");
                println!("       engine-cli search [--json FILE] [SPEC.json]...");
                println!("With no spec files, runs the builtin 512x512 scenario suite.");
                println!("--threads N pins the worker pool (any mode, sets LATSCHED_THREADS).");
                return ExitCode::SUCCESS;
            }
            other => spec_paths.push(other.to_string()),
        }
    }

    let mut scenarios: Vec<Scenario> = Vec::new();
    if spec_paths.is_empty() {
        scenarios = builtin_scenarios();
    } else {
        for path in &spec_paths {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("failed to read {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            match Scenario::parse_spec(&text) {
                Ok(mut parsed) => scenarios.append(&mut parsed),
                Err(err) => {
                    eprintln!("failed to parse {path}: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let cache = ScheduleCache::new();
    let mut reports = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        match run_scenario(scenario, &cache) {
            Ok(report) => {
                // Stream each result as it completes.
                println!("{report}");
                reports.push(report);
            }
            Err(err) => {
                eprintln!("scenario '{}' failed: {err}", scenario.name);
                return ExitCode::FAILURE;
            }
        }
        // Dump after the timed run so the report's compile time reflects the
        // real (cache-miss) compilation, not a dump-warmed hit.
        if dump {
            if let Err(err) = dump_scenario(scenario, &cache) {
                eprintln!("scenario '{}' failed: {err}", scenario.name);
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "{} scenario(s), {} compiled schedule(s) cached ({} hits / {} misses)",
        reports.len(),
        cache.len(),
        cache.hits(),
        cache.misses()
    );

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&serde_json::Value::Array(
            reports.iter().map(|r| r.to_json_value()).collect(),
        ));
        if let Err(err) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} report(s) to {path}", reports.len());
    }
    if let Some(path) = metrics_out {
        if !write_metrics(&path) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Streams the full slot answer set of one scenario to stdout as CSV rows
/// (`x,y,...,slot`), one row per lattice point of the window.
fn dump_scenario(scenario: &Scenario, cache: &ScheduleCache) -> latsched_engine::Result<()> {
    use std::io::Write;
    let compiled = cache.get_or_compile(&scenario.shape.prototile()?)?;
    let region = scenario.region()?;
    let slots = compiled.slots_of_region(&region)?;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for (point, slot) in region.iter().zip(&slots) {
        let mut line = String::new();
        for c in point.coords() {
            line.push_str(&c.to_string());
            line.push(',');
        }
        line.push_str(&slot.to_string());
        let _ = writeln!(out, "{line}");
    }
    Ok(())
}
