//! Systems-level comparison of MAC policies on the paper's interference model:
//! the tiling schedule versus TDMA, a distance-2-colouring schedule, and slotted
//! ALOHA, on a square grid of sensors with the Moore interference neighbourhood.
//!
//! The paper's motivation is qualitative ("collisions waste energy"); this example
//! quantifies it with the `latsched-sensornet` simulator.
//!
//! Run with: `cargo run --release --example network_comparison`

use latsched::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = shapes::moore();
    let side = 12;
    let network = grid_network(side, &shape)?;
    println!(
        "Network: {side}x{side} grid ({} sensors), Moore interference neighbourhood (|N| = {}).\n",
        network.len(),
        shape.len()
    );

    let macs = vec![
        tiling_mac(&shape)?,
        MacPolicy::Tdma,
        coloring_mac(&network)?,
        aloha_mac(shape.len()),
    ];

    println!(
        "{:<24} {:>8} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "MAC", "load", "delivery", "latency", "tx/packet", "energy/pkt", "collisions"
    );
    for period in [64u64, 32, 16, 8] {
        let traffic = TrafficModel::Periodic { period };
        let rows = run_comparison(&network, &macs, traffic, 2048, 42)?;
        for row in rows {
            println!(
                "{:<24} {:>8.4} {:>10.3} {:>10.1} {:>12.2} {:>12.2} {:>12}",
                row.mac,
                row.load,
                row.metrics.delivery_ratio(),
                row.metrics.mean_latency(),
                row.metrics.transmissions_per_delivered(),
                row.metrics.energy_per_delivered(),
                row.metrics.collisions
            );
        }
        println!();
    }

    println!(
        "Expected shape (matching the paper's motivation): the tiling schedule and the \
         colouring schedule deliver everything with short latency; TDMA also never collides \
         but its latency grows with the network size; ALOHA collides and wastes energy as \
         the load increases."
    );
    Ok(())
}
