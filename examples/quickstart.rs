//! Quickstart: derive an optimal collision-free broadcast schedule for sensors on the
//! square lattice with an omnidirectional (Moore / Chebyshev-ball) interference
//! neighbourhood, verify it, and print a window of the slot assignment.
//!
//! Run with: `cargo run --example quickstart`

use latsched::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The interference neighbourhood of every sensor: the 3×3 Chebyshev ball of
    //    radius 1 (Figure 2, left, of the paper). |N| = 9.
    let neighbourhood = shapes::moore();
    println!(
        "Interference neighbourhood ({} sensors affected):",
        neighbourhood.len()
    );
    println!("{}", neighbourhood.to_ascii()?);

    // 2. Find a tiling of the lattice by translates of N. The search enumerates the
    //    sublattices of index |N| and returns one for which N is a transversal.
    let tiling = find_tiling(&neighbourhood)?.expect("the Moore neighbourhood tiles Z^2");
    println!("Tiling found: {tiling}");

    // 3. Theorem 1: read the schedule off the tiling. Each sensor's slot is its
    //    position within its tile, so the schedule has m = |N| = 9 slots.
    let schedule = theorem1::schedule_from_tiling(&tiling);
    let deployment = theorem1::deployment_for(&tiling);
    println!("Schedule: {schedule}");

    // 4. Verify collision-freedom exactly (for the entire infinite lattice) and check
    //    optimality against the clique lower bound.
    let report = verify::verify_schedule(&schedule, &deployment)?;
    println!("Verification: {report}");
    assert!(report.collision_free());
    assert!(optimality::is_optimal(&schedule, &deployment));
    println!(
        "The schedule is optimal: no collision-free periodic schedule uses fewer than {} slots.",
        optimality::slot_lower_bound(&deployment)
    );

    // 5. Show the slot of every sensor in a 9×9 window (the textual analogue of
    //    Figure 3 of the paper).
    let window = BoxRegion::square_window(2, 9)?;
    println!("\nSlot assignment on a 9x9 window:");
    println!("{}", schedule.render_window(&window)?);

    // 6. A sensor may broadcast at time t iff t ≡ slot (mod 9).
    let p = Point::xy(4, 7);
    println!(
        "Sensor at {p} has slot {} and may transmit at t=100: {}",
        schedule.slot_of(&p)?,
        schedule.may_transmit(&p, 100)?
    );
    Ok(())
}
