//! The compiled schedule-query engine in one sitting: compile the Figure 2
//! neighbourhood schedules through the sharded cache, batch-answer a 512×512
//! window of point queries, and cross-check the compiled backend against the
//! paper's exact whole-lattice verifier.
//!
//! Run with: `cargo run --release --example engine_quickstart`

use latsched::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = ScheduleCache::new();
    let window = BoxRegion::square_window(2, 512)?;

    for (name, shape) in [
        ("moore9", shapes::chebyshev_ball(2, 1)?),
        ("plus5", shapes::euclidean_ball(2, 1)?),
        ("antenna8", shapes::directional_antenna()),
    ] {
        // Compile once (tiling search + dense table build) …
        let compile_start = Instant::now();
        let compiled = cache.get_or_compile(&shape)?;
        let compile_time = compile_start.elapsed();

        // … then serve a quarter-million queries in one batched call.
        let query_start = Instant::now();
        let slots = compiled.slots_of_region(&window)?;
        let query_time = query_start.elapsed();

        // The compiled table still passes the paper's exact collision-freedom
        // proof for the whole infinite lattice.
        let tiling = find_tiling(&shape)?.expect("Figure 2 shapes are exact");
        let deployment = theorem1::deployment_for(&tiling);
        assert!(compiled.verify(&deployment)?.collision_free());

        println!(
            "{name:<9} m={:<2}  compiled in {compile_time:>9.1?}, {} queries in {query_time:>9.1?} \
             ({:.1} M queries/s)",
            compiled.num_slots(),
            slots.len(),
            slots.len() as f64 / query_time.as_secs_f64() / 1e6,
        );
    }

    // Re-running a scenario hits the cache: no tiling search, no table build.
    let again = Instant::now();
    cache.get_or_compile(&shapes::moore())?;
    println!(
        "cache hit for moore9 in {:?} ({} hits / {} misses so far)",
        again.elapsed(),
        cache.hits(),
        cache.misses()
    );

    // The same engine powers ad-hoc point sets (deployed sensor positions).
    let compiled = cache.get_or_compile(&shapes::moore())?;
    let sensors: Vec<Point> = (0..1000)
        .map(|i| Point::xy(i * 37 - 500, i * 91 - 700))
        .collect();
    let slots = compiled.slots_of_points(&sensors)?;
    println!(
        "1000 scattered sensors scheduled; first five slots: {:?}",
        &slots[..5]
    );
    Ok(())
}
