//! Mobile sensors scheduled by location (the paper's concluding construction).
//!
//! Slots are assigned to the Voronoi cells of the lattice points rather than to the
//! sensors themselves. A sensor may broadcast when the slot of the cell it currently
//! occupies comes up **and** its interference range fits inside that cell's tile.
//! The example moves a population of sensors with a simple random-waypoint walk and
//! checks, at every slot, that the transmitting sensors' interference disks are
//! pairwise disjoint — i.e. the schedule stays collision-free under mobility.
//!
//! Run with: `cargo run --example mobile_sensors`

use latsched::core::mobile::{interference_disks_disjoint, LocationSchedule, MobileSensor};
use latsched::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stationary scaffolding: the Moore neighbourhood tiling of Z² and the standard
    // square-lattice geometry.
    let tiling = find_tiling(&shapes::moore())?.expect("the Moore neighbourhood is exact");
    let schedule = LocationSchedule::new(tiling, Embedding::standard(2))?;
    println!("Location schedule: {schedule}");

    // A population of mobile sensors wandering inside a 12×12 arena.
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    let arena = 12.0;
    let mut sensors: Vec<MobileSensor> = (0..40)
        .map(|id| MobileSensor {
            id,
            position: [rng.gen::<f64>() * arena, rng.gen::<f64>() * arena],
            range: 0.35,
        })
        .collect();

    let slots = 200u64;
    let mut transmissions = 0usize;
    let mut silent_due_to_fit = 0usize;
    let mut silent_due_to_crowding = 0usize;
    for t in 0..slots {
        // The paper assumes the lattice is fine enough that at most one sensor sits
        // in any Voronoi cell. The random walk can violate that, so the example
        // operationalizes the assumption: a sensor may only use its cell's slot if it
        // is the sole occupant of the cell.
        let mut occupancy = std::collections::BTreeMap::new();
        for s in &sensors {
            *occupancy
                .entry(schedule.home_lattice_point(s.position))
                .or_insert(0usize) += 1;
        }
        // Who may transmit right now?
        let candidates = schedule.transmitters_at(&sensors, t)?;
        let transmitters: Vec<&MobileSensor> = candidates
            .into_iter()
            .filter(|s| occupancy[&schedule.home_lattice_point(s.position)] == 1)
            .collect();
        // Sensors sharing a cell with another sensor cannot use the cell's slot.
        silent_due_to_crowding += sensors.len() - occupancy.values().filter(|&&c| c == 1).count();
        transmissions += transmitters.len();
        assert!(
            interference_disks_disjoint(&transmitters),
            "mobile schedule produced overlapping interference disks at t={t}"
        );
        // Count sensors whose slot came up but whose range did not fit their tile.
        for s in &sensors {
            let slot = schedule.slot_of_position(s.position)?;
            if t % schedule.num_slots() as u64 == slot as u64 && !schedule.may_transmit(s, t)? {
                silent_due_to_fit += 1;
            }
        }
        // Random-waypoint-style jitter: every sensor takes a small random step,
        // reflected back into the arena.
        for s in &mut sensors {
            for axis in 0..2 {
                let step = rng.gen_range(-0.25..0.25);
                s.position[axis] = (s.position[axis] + step).clamp(0.0, arena);
            }
        }
    }

    println!(
        "Simulated {slots} slots with 40 mobile sensors: {transmissions} transmissions, \
         0 collisions (verified every slot)."
    );
    println!(
        "{silent_due_to_fit} transmission opportunities were skipped because the sensor's \
         range did not fit its current tile (the price of mobility in this scheme)."
    );
    println!(
        "{silent_due_to_crowding} sensor-slots were spent sharing a Voronoi cell with another \
         sensor (the paper assumes the lattice is fine enough for this never to happen)."
    );
    Ok(())
}
