//! Figure 3 of the paper: sensors with a directional antenna whose 8-point
//! interference pattern tiles the lattice, giving an 8-slot optimal schedule.
//!
//! The example also demonstrates the exactness machinery: the Beauquier–Nivat
//! boundary-word criterion and the sublattice search certify independently that the
//! antenna pattern tiles the plane.
//!
//! Run with: `cargo run --example directional_antenna`

use latsched::prelude::*;
use latsched::tiling::Transform2D;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 8-point directional antenna pattern of Figures 2 (right) and 3.
    let antenna = shapes::directional_antenna();
    println!("Directional antenna neighbourhood:");
    println!("{}", antenna.to_ascii()?);

    // Exactness, certified two independent ways.
    let report = check_exactness(&antenna)?;
    println!("{report}");
    println!("Boundary word: {}", boundary_word(&antenna)?.to_letters());
    if let Some(cert) = &report.bn_certificate {
        println!("Beauquier-Nivat factorization: {cert}");
    }
    println!(
        "Tiling sublattices of index {}: {}",
        antenna.len(),
        report.tiling_sublattices.len()
    );

    // Theorem 1 schedule: 8 slots, collision-free, optimal.
    let tiling = find_tiling(&antenna)?.expect("the antenna pattern is exact");
    let schedule = theorem1::schedule_from_tiling(&tiling);
    let deployment = theorem1::deployment_for(&tiling);
    assert_eq!(schedule.num_slots(), 8);
    assert!(verify::verify_schedule(&schedule, &deployment)?.collision_free());
    assert!(optimality::is_optimal(&schedule, &deployment));

    // Figure 3 shows slots 1..8 repeating across the plane; print the same picture
    // (slots here are 0-based).
    println!("\nSlot assignment on an 8x8 window (compare with Figure 3):");
    println!(
        "{}",
        schedule.render_window(&BoxRegion::square_window(2, 8)?)?
    );

    // The sensors transmitting in any fixed slot have pairwise disjoint
    // neighbourhoods (the observation of Figure 3, right).
    let window = BoxRegion::square_window(2, 16)?;
    let slot0 = schedule.points_in_slot(0, &window)?;
    println!(
        "{} sensors of the 16x16 window transmit in slot 0; their neighbourhoods are pairwise disjoint.",
        slot0.len()
    );
    for a in &slot0 {
        for b in &slot0 {
            if a < b {
                assert!(!deployment.interferes(a, b)?);
            }
        }
    }

    // Rotated antennas: the same machinery works for every orientation.
    for transform in [Transform2D::Rotate90, Transform2D::Rotate180] {
        let rotated = transform.apply_to_prototile(&antenna)?;
        let tiling = find_tiling(&rotated)?.expect("rotations of an exact tile are exact");
        let schedule = theorem1::schedule_from_tiling(&tiling);
        println!(
            "Antenna rotated by {transform}: still an optimal {}-slot schedule.",
            schedule.num_slots()
        );
    }
    Ok(())
}
