//! Figure 5 of the paper: without a respectable prototile, the optimal number of time
//! slots depends on the chosen tiling.
//!
//! The symmetric, single-prototile tiling by S tetrominoes has a 4-slot optimal
//! schedule. A mixed tiling that interleaves S and Z tetrominoes (no prototile
//! contains the other, so the tiling is not respectable) needs more slots under the
//! paper's ground rules — the Theorem 2 construction gives 6 slots, and the exact
//! tile-wise optimum confirms that 4 slots are impossible for that tiling.
//!
//! Run with: `cargo run --example nonrespectable_tetromino`

use latsched::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let s = Tetromino::S.prototile();
    let z = Tetromino::Z.prototile();
    println!("S tetromino:\n{}", s.to_ascii()?);
    println!("Z tetromino:\n{}", z.to_ascii()?);
    println!(
        "Neither contains the other (S ⊇ Z: {}, Z ⊇ S: {}), so a tiling using both is non-respectable.\n",
        s.contains_tile(&z),
        z.contains_tile(&s)
    );

    // --- Figure 5 (right): the symmetric all-S tiling. -------------------------
    let symmetric = MultiTiling::new(
        vec![s.clone()],
        Sublattice::scaled(2, 2).unwrap(),
        vec![vec![Point::xy(0, 0)]],
    )?;
    let schedule_sym = theorem2::schedule_from_multi_tiling(&symmetric);
    let optimum_sym = optimality::minimal_tilewise_schedule(&symmetric, 8)?;
    println!("Symmetric S-only tiling:");
    println!(
        "  Theorem 2 schedule uses {} slots",
        schedule_sym.num_slots()
    );
    println!("  exact tile-wise optimum: {} slots", optimum_sym.slots);
    println!(
        "{}",
        optimum_sym
            .schedule
            .render_window(&BoxRegion::square_window(2, 8)?)?
    );

    // --- Figure 5 (left): a mixed S/Z tiling. -----------------------------------
    let period = Sublattice::scaled(2, 4).unwrap();
    let mixed =
        tile_torus_with_all(&[s, z], &period)?.expect("a mixed S/Z tiling of the 4x4 torus exists");
    assert!(!mixed.is_respectable());
    println!(
        "Mixed S/Z tiling (period 4Z x 4Z, {} tiles per period):",
        mixed.tiles_per_period()
    );
    println!(
        "  offsets using S: {:?}",
        mixed.offsets()[0]
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    println!(
        "  offsets using Z: {:?}",
        mixed.offsets()[1]
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );

    let schedule_mixed = theorem2::schedule_from_multi_tiling(&mixed);
    let deployment_mixed = theorem2::deployment_for(&mixed);
    let report = verify::verify_schedule(&schedule_mixed, &deployment_mixed)?;
    println!(
        "  Theorem 2 schedule uses {} slots (|N_S ∪ N_Z| = 6) and is {}",
        schedule_mixed.num_slots(),
        if report.collision_free() {
            "collision-free"
        } else {
            "NOT collision-free"
        }
    );

    let optimum_mixed = optimality::minimal_tilewise_schedule(&mixed, 10)?;
    println!(
        "  exact tile-wise optimum: {} slots (classes: {}, conflicting class pairs: {})",
        optimum_mixed.slots, optimum_mixed.classes, optimum_mixed.conflicts
    );
    println!(
        "{}",
        optimum_mixed
            .schedule
            .render_window(&BoxRegion::square_window(2, 8)?)?
    );

    println!(
        "Conclusion: the symmetric tiling needs {} slots, the mixed tiling needs {} — in the \
         non-respectable case the optimal schedule depends on the chosen tiling.",
        optimum_sym.slots, optimum_mixed.slots
    );
    assert!(optimum_mixed.slots > optimum_sym.slots);
    Ok(())
}
