//! # latsched
//!
//! Collision-free, provably optimal broadcast schedules for wirelessly communicating
//! sensors placed on the points of a lattice — a faithful, from-scratch reproduction
//! of *Scheduling Sensors by Tiling Lattices* (Andreas Klappenecker, Hyunyoung Lee,
//! Jennifer L. Welch, 2008).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`lattice`] | `latsched-lattice` | Euclidean lattices, integer linear algebra, sublattices, cosets, Voronoi cells |
//! | [`tiling`] | `latsched-tiling` | Prototiles, tilings (T1/T2, GT1/GT2), exactness algorithms (sublattice search, Beauquier–Nivat) |
//! | [`core`] | `latsched-core` | Theorems 1 and 2, schedule verification, optimality, finite restrictions, mobile sensors |
//! | [`coloring`] | `latsched-coloring` | Interference graphs, distance-2 colouring baselines (TDMA, greedy, DSATUR, exact, annealing) |
//! | [`sensornet`] | `latsched-sensornet` | Slot-synchronous network simulator with the paper's interference model |
//! | [`engine`] | `latsched-engine` | Compiled, batched, parallel schedule-query engine (dense coset tables, sharded cache, scenario CLI) |
//!
//! ## Quick start
//!
//! ```
//! use latsched::prelude::*;
//!
//! // Sensors on Z² with the 3×3 Moore interference neighbourhood (Figure 2, left).
//! let neighbourhood = shapes::moore();
//!
//! // Find a tiling of the lattice by that neighbourhood and read off the schedule.
//! let tiling = find_tiling(&neighbourhood)?.expect("the Moore neighbourhood is exact");
//! let schedule = theorem1::schedule_from_tiling(&tiling);
//! let deployment = theorem1::deployment_for(&tiling);
//!
//! // 9 slots, collision-free on the whole infinite lattice, and optimal.
//! assert_eq!(schedule.num_slots(), 9);
//! assert!(verify::verify_schedule(&schedule, &deployment)?.collision_free());
//! assert!(optimality::is_optimal(&schedule, &deployment));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use latsched_coloring as coloring;
pub use latsched_core as core;
pub use latsched_engine as engine;
pub use latsched_lattice as lattice;
pub use latsched_sensornet as sensornet;
pub use latsched_tiling as tiling;

/// A convenient set of re-exports covering the most common entry points.
pub mod prelude {
    pub use latsched_coloring::{
        dsatur_coloring, exact_coloring, greedy_coloring, tdma_coloring, ConflictGraph,
        GreedyOrder, InterferenceGraph,
    };
    pub use latsched_core::{
        mobile, optimality, theorem1, theorem2, verify, Deployment, FiniteDeployment,
        PeriodicSchedule, SlotSource,
    };
    pub use latsched_engine::{
        builtin_scenarios, run_scenario, ArtifactStore, CompiledSchedule, PlanCache, Scenario,
        ScheduleCache, TraceCache,
    };
    pub use latsched_lattice::{
        ball_points, hexagonal_lattice, square_lattice, voronoi_cell, BoxRegion, DynReducer,
        Embedding, FixedReducer, IntMatrix, MagicDiv, Metric, Point, Sublattice,
    };
    pub use latsched_sensornet::{
        aloha_mac, coloring_mac, grid_network, run_comparison, run_simulation, run_simulation_with,
        tiling_mac, FrameKernel, MacPolicy, Network, ReferenceKernel, SimBackend, SimConfig,
        TrafficModel,
    };
    pub use latsched_tiling::{
        boundary_word, check_exactness, find_tiling, is_exact, is_exact_polyomino, shapes,
        tetromino, tile_torus, tile_torus_with_all, MultiTiling, Prototile, Tetromino, Tiling,
        TorusSearch, TranslationSet,
    };
}
