//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real `serde` cannot be
//! fetched. The workspace only uses `serde` for `#[derive(Serialize, Deserialize)]`
//! annotations (no code path actually serializes through the serde data model —
//! JSON output goes through the vendored `serde_json::Value` type directly), so the
//! two traits are defined as blanket-implemented markers and the derives expand to
//! nothing. Swapping the real crates back in requires no source changes outside
//! `vendor/`.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Sized {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Stub of the `serde::de` module namespace.
pub mod de {
    pub use super::DeserializeOwned;
}
