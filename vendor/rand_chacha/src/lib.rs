//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha8 keystream generator (D. J. Bernstein's ChaCha with
//! 8 rounds) behind the vendored `rand` traits. Given a fixed seed the stream is
//! fully deterministic, which is all the workspace's simulator and tests rely on;
//! the stream does **not** bit-match the real `rand_chacha` crate (which seeds and
//! consumes the keystream differently).

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Builds the generator from a 256-bit key (the real crate's `from_seed` shape).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16: block counter and nonce, all zero initially.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the same
        // construction the real rand crate uses for seed_from_u64.
        let mut sm = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        ChaCha8Rng::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn keystream_is_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..256).map(|_| rng.next_u64().count_ones()).sum();
        // 256 * 64 / 2 = 8192 expected; allow a generous window.
        assert!((7600..8800).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn trait_methods_compose() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let v = rng.gen_range(0usize..10);
        assert!(v < 10);
    }
}
