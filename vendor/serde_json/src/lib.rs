//! Offline stand-in for `serde_json`.
//!
//! The build environment has no network access, so the real `serde_json` cannot be
//! fetched. This crate provides the small slice of functionality the workspace
//! needs — a JSON [`Value`] tree, a strict parser ([`from_str`]) and compact/pretty
//! writers — without going through the serde data model: call sites construct and
//! destructure [`Value`] directly.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A parse or access error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Error {
    msg: String,
    /// Byte offset at which the error was detected (0 for semantic errors).
    pub offset: usize,
}

impl Error {
    fn new(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON document: null, boolean, number, string, array or object.
///
/// Objects preserve insertion order is not required by any caller, so a
/// [`BTreeMap`] keeps key lookup simple and output deterministic.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member access: `value.get("key")` for objects, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an `i64`, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(*n as i64),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a nonnegative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                });
            }
            Value::Object(map) => {
                let entries: Vec<(&String, &Value)> = map.iter().collect();
                write_seq(out, indent, level, '{', '}', entries.len(), |out, i| {
                    let (k, v) = entries[i];
                    write_escaped(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

/// Renders a value as compact JSON.
pub fn to_string(value: &Value) -> String {
    value.to_string()
}

/// Renders a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, Some(2), 0);
    out
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    Ok(value)
}

impl FromStr for Value {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        from_str(s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("expected '{lit}'"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!("unexpected '{}'", c as char), self.pos)),
            None => Err(Error::new("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or(Error::new("bad escape", self.pos))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or(Error::new("bad \\u escape", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape", self.pos))?;
                            // Surrogate pairs are not needed by any caller; map
                            // lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("unknown escape", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8", start))?;
                    let c = text.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new("invalid number", start))
    }
}

/// Convenience constructors used by the workspace.
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": "x\"y", "d": null}, "e": true}"#;
        let v = from_str(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
        let reparsed = from_str(&to_string(&v)).unwrap();
        assert_eq!(reparsed, v);
        let reparsed_pretty = from_str(&to_string_pretty(&v)).unwrap();
        assert_eq!(reparsed_pretty, v);
    }

    #[test]
    fn integers_survive_exactly() {
        let v = from_str("[0, 42, -7, 1000000]").unwrap();
        let nums: Vec<i64> = v
            .as_array()
            .unwrap()
            .iter()
            .map(|n| n.as_i64().unwrap())
            .collect();
        assert_eq!(nums, vec![0, 42, -7, 1000000]);
        assert_eq!(to_string(&v), "[0,42,-7,1000000]");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("01abc").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("{} trailing").is_err());
    }
}
