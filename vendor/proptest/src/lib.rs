//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real `proptest` cannot be
//! fetched. This crate keeps the syntax of the subset the workspace's tests use —
//! the [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, [`Strategy::prop_map`] / [`Strategy::prop_filter_map`],
//! [`collection::vec`], [`prop_assert!`] and [`prop_assert_eq!`] — and runs each
//! test body over deterministically seeded random cases (seeded per test name, so
//! failures are reproducible). Shrinking is not implemented: a failing case reports
//! its inputs via `Debug` instead.

#![warn(missing_docs)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub mod strategy;

pub use strategy::Strategy;

/// The per-test RNG driving case generation.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// A deterministic RNG seeded from the test name.
    pub fn deterministic(name: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.inner
    }
}

/// Run configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running the given number of cases — unless the
    /// `PROPTEST_CASES` environment variable is set, which takes precedence
    /// (over in-source counts too, unlike upstream proptest) so deep CI runs
    /// (`PROPTEST_CASES=1024` on the nightly schedule) multiply coverage
    /// without editing any test file.
    pub fn with_cases(cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, or the `PROPTEST_CASES` override.
    fn default() -> Self {
        ProptestConfig::with_cases(64)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s whose lengths are drawn from `len` and whose
    /// elements are drawn from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.rng().gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The commonly used exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Defines property tests over randomly generated inputs.
///
/// Supports the subset of the real macro the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0i64..10, pair in (0usize..4, 0usize..8)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, message, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(
                format!("assertion failed: {:?} != {:?}", left, right),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(
                format!("{}: {:?} != {:?}", format!($($fmt)+), left, right),
            );
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -5i64..5, y in 0usize..3) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn tuples_and_maps_compose(p in (0i64..4, 0i64..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!((0..34).contains(&p));
        }

        #[test]
        fn filter_map_retries(v in (0i64..10).prop_filter_map("nonzero", |x| if x == 0 { None } else { Some(x) })) {
            prop_assert_ne!(v, 0);
        }

        #[test]
        fn vec_strategy_obeys_length(items in crate::collection::vec(0usize..4, 0..7)) {
            prop_assert!(items.len() < 7);
            for item in &items {
                prop_assert!(*item < 4);
            }
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use rand::RngCore;
        let a = crate::TestRng::deterministic("x").rng().next_u64();
        let b = crate::TestRng::deterministic("x").rng().next_u64();
        let c = crate::TestRng::deterministic("y").rng().next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
