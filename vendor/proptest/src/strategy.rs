//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike the real proptest, generation here is direct (no intermediate value
/// trees), so there is no shrinking; failing cases report their inputs instead.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Transforms generated values, rejecting those for which `filter_map`
    /// returns `None` (regenerating until one is accepted).
    fn prop_filter_map<U, F>(self, reason: &'static str, filter_map: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            strategy: self,
            filter_map,
            reason,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.strategy.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    strategy: S,
    filter_map: F,
    reason: &'static str,
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(value) = (self.filter_map)(self.strategy.generate(rng)) {
                return value;
            }
        }
        panic!("prop_filter_map exhausted 10000 attempts: {}", self.reason);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// The strategy that always yields clones of one value (`proptest::strategy::Just`).
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
