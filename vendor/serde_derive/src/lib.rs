//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the real `serde` cannot be
//! fetched. The workspace's `vendor/serde` defines `Serialize`/`Deserialize` as
//! blanket-implemented marker traits, which means the derive macros have nothing to
//! generate: they accept the usual derive position (including `#[serde(...)]` helper
//! attributes) and expand to an empty token stream.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
