//! Offline stand-in for `rand`.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. This crate reimplements exactly the trait surface the workspace uses —
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension methods `gen`, `gen_range`
//! and `gen_bool`, and [`seq::SliceRandom::shuffle`] — with the same call syntax as
//! the real crate, so swapping the real dependency back in requires no source
//! changes. Streams are deterministic for a fixed seed but do **not** reproduce the
//! real crate's bit streams.

#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution (`f64` uniform in
    /// `[0, 1)`, integers uniform over their full range, `bool` fair).
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(-0.25..0.25)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution (the role the real crate
/// gives to `distributions::Standard`).
pub trait SampleStandard {
    /// Draws one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (the role of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types that support uniform sampling from a half-open range (the role
/// of `rand`'s `SampleUniform`). The single blanket impl of [`SampleRange`] over
/// this trait is what lets type inference flow from the range literal to the
/// sampled value, exactly as in the real crate.
pub trait SampleUniform: Sized {
    /// A uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is ~span/2^64, negligible for the small spans used in
                // this workspace (simulation parameters, test case generation).
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample from empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample from empty range");
        low + f32::sample_standard(rng) * (high - low)
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: RngCore;

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
        where
            R: RngCore;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: RngCore,
        {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R>(&self, rng: &mut R) -> Option<&T>
        where
            R: RngCore,
        {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = SplitMix(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = SplitMix(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
        for _ in 0..500 {
            let v = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix(4);
        let yes = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&yes), "yes = {yes}");
    }
}
