//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the real `criterion` cannot be
//! fetched. This crate keeps the call syntax of the real API surface the workspace
//! uses — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — and implements a simple wall-clock measurement loop:
//! a calibration pass picks an iteration count targeting a fixed measurement
//! window, several samples are taken, and the median ns/iteration is printed.
//!
//! When the binary is invoked with `--test` (as `cargo test` does for benches with
//! `harness = false`), every benchmark body runs exactly once so the test suite
//! stays fast.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    measurement_time: Duration,
    samples: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            measurement_time: Duration::from_millis(120),
            samples: 5,
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, &mut body);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run<F>(&mut self, name: &str, body: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            let mut bencher = Bencher {
                iterations: 1,
                elapsed: Duration::ZERO,
            };
            body(&mut bencher);
            println!("test-mode ok: {name}");
            return;
        }
        // Calibration: run once to estimate per-iteration cost.
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        body(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let target = self.measurement_time.as_nanos() / self.samples.max(1) as u128;
        let iterations = (target / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut bencher = Bencher {
                iterations,
                elapsed: Duration::ZERO,
            };
            body(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iterations as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        println!(
            "bench: {name:<50} {:>14} /iter  (x{iterations})",
            format_ns(median)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` with an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .run(&full, &mut |bencher| body(bencher, input));
        self
    }

    /// Runs a benchmark identified by `id` without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run(&full, &mut body);
        self
    }

    /// Adjusts the per-benchmark measurement window.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Adjusts the number of samples (kept for API compatibility).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.samples = samples.clamp(3, 100);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound identifier `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to benchmark bodies.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body`, running it the harness-chosen number of iterations.
    pub fn iter<O, F>(&mut self, mut body: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from a list of group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_bodies() {
        let mut criterion = Criterion {
            measurement_time: Duration::from_millis(5),
            samples: 3,
            test_mode: false,
        };
        let mut runs = 0u64;
        criterion.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut criterion = Criterion {
            measurement_time: Duration::from_millis(5),
            samples: 3,
            test_mode: true,
        };
        let mut group = criterion.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(BenchmarkId::new("a", "b"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
